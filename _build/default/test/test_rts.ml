(* Runtime substrate (§2): ioref records, tables, the insert/update
   protocols, mutator agents with variables-as-roots, retention pins,
   crash parking, and the plain local GC. *)

open Dgc_prelude
open Dgc_simcore
open Dgc_heap
open Dgc_rts

let s k = Site_id.of_int k

let cfg n =
  {
    Config.default with
    Config.n_sites = n;
    latency = Latency.Fixed (Sim_time.of_millis 10.);
    trace_duration = Sim_time.zero;
  }

let run eng secs = Engine.run_for eng (Sim_time.of_seconds secs)

(* --- ioref records ------------------------------------------------------- *)

let test_inref_sources () =
  let target = Oid.make ~site:(s 0) ~index:0 in
  let ir = Ioref.make_inref target in
  Alcotest.(check int) "no sources: infinite" Ioref.infinity_dist
    (Ioref.inref_dist ir);
  Ioref.add_source ir (s 1) ~dist:4;
  Ioref.add_source ir (s 2) ~dist:2;
  Alcotest.(check int) "min over sources" 2 (Ioref.inref_dist ir);
  (* add_source keeps the minimum for an existing source *)
  Ioref.add_source ir (s 1) ~dist:9;
  Alcotest.(check bool) "merge keeps min" true
    (match Ioref.find_source ir (s 1) with
    | Some src -> src.Ioref.src_dist = 4
    | None -> false);
  (* set overwrites *)
  Ioref.set_source_dist ir (s 1) ~dist:9;
  Alcotest.(check bool) "set overwrites" true
    (match Ioref.find_source ir (s 1) with
    | Some src -> src.Ioref.src_dist = 9
    | None -> false);
  Ioref.set_source_dist ir (s 5) ~dist:1;
  Alcotest.(check bool) "set ignores unknown" true
    (Ioref.find_source ir (s 5) = None);
  Ioref.remove_source ir (s 2);
  Alcotest.(check (list int)) "remove" [ 1 ]
    (List.map Site_id.to_int (Ioref.source_sites ir))

let test_clean_predicates () =
  let target = Oid.make ~site:(s 0) ~index:0 in
  let ir = Ioref.make_inref target in
  Ioref.add_source ir (s 1) ~dist:10;
  Alcotest.(check bool) "fresh is clean" true (Ioref.inref_clean ~delta:3 ir);
  ir.Ioref.ir_fresh <- false;
  Alcotest.(check bool) "not suspected yet: clean" true
    (Ioref.inref_clean ~delta:3 ir);
  ir.Ioref.ir_suspected <- true;
  Alcotest.(check bool) "suspected + far: not clean" false
    (Ioref.inref_clean ~delta:3 ir);
  ir.Ioref.ir_forced_clean <- true;
  Alcotest.(check bool) "forced clean wins" true (Ioref.inref_clean ~delta:3 ir);
  ir.Ioref.ir_forced_clean <- false;
  Ioref.set_source_dist ir (s 1) ~dist:2;
  Alcotest.(check bool) "distance back under delta: clean" true
    (Ioref.inref_clean ~delta:3 ir);
  let o = Ioref.make_outref (Oid.make ~site:(s 1) ~index:0) in
  o.Ioref.or_fresh <- false;
  o.Ioref.or_suspected <- true;
  Alcotest.(check bool) "suspected outref not clean" false
    (Ioref.outref_clean o);
  o.Ioref.or_pins <- 1;
  Alcotest.(check bool) "pinned outref clean" true (Ioref.outref_clean o)

let test_tables () =
  let t = Tables.create (s 0) in
  let local = Oid.make ~site:(s 0) ~index:1 in
  let remote = Oid.make ~site:(s 1) ~index:1 in
  let ir = Tables.ensure_inref t local in
  Alcotest.(check bool) "idempotent" true (Tables.ensure_inref t local == ir);
  Alcotest.check_raises "inref must be local"
    (Invalid_argument "Tables.ensure_inref: reference not local to this site")
    (fun () -> ignore (Tables.ensure_inref t remote));
  let _, created = Tables.ensure_outref t remote in
  Alcotest.(check bool) "outref created" true created;
  let _, created2 = Tables.ensure_outref t remote in
  Alcotest.(check bool) "outref reused" false created2;
  Alcotest.check_raises "outref must be remote"
    (Invalid_argument "Tables.ensure_outref: reference is local to this site")
    (fun () -> ignore (Tables.ensure_outref t local));
  Alcotest.(check int) "counts" 1 (Tables.inref_count t);
  Tables.remove_inref t local;
  Alcotest.(check bool) "removed" true (Tables.find_inref t local = None)

let test_protocol_kinds () =
  Alcotest.(check string) "insert kind" "insert"
    (Protocol.kind (Protocol.Insert { r = Oid.make ~site:(s 0) ~index:0; by = s 1 }));
  Alcotest.(check string) "update kind" "update"
    (Protocol.kind (Protocol.Update { removals = []; dists = [] }));
  let r = Oid.make ~site:(s 0) ~index:3 in
  Alcotest.(check int) "move carries refs" 2
    (List.length
       (Protocol.refs_carried
          (Protocol.Move { agent = 0; refs = [ r; r ]; token = 0 })));
  Alcotest.(check int) "update carries none" 0
    (List.length
       (Protocol.refs_carried (Protocol.Update { removals = [ r ]; dists = [] })))

(* --- builder + oracle integrity ------------------------------------------ *)

let test_builder_tables_consistent () =
  let eng = Engine.create (cfg 3) in
  let a = Builder.root_obj eng (s 0) in
  let b = Builder.obj eng (s 1) in
  let c = Builder.obj eng (s 2) in
  Builder.link eng ~src:a ~dst:b;
  Builder.link eng ~src:b ~dst:c;
  Builder.link eng ~src:c ~dst:a;
  Alcotest.(check (list string)) "no violations" []
    (Dgc_oracle.Oracle.table_violations eng);
  (* the inref records the right source *)
  match Tables.find_inref (Engine.site eng (s 1)).Site.tables b with
  | Some ir ->
      Alcotest.(check (list int)) "source" [ 0 ]
        (List.map Site_id.to_int (Ioref.source_sites ir))
  | None -> Alcotest.fail "missing inref"

(* --- engine: moves, inserts, pins ----------------------------------------- *)

let test_move_insert_protocol () =
  let eng = Engine.create (cfg 3) in
  Local_gc.install eng;
  let muts = Mutator.manager eng in
  (* A root at site 0 holding a local object; the agent carries the
     object's reference to site 1 where nothing knows it. *)
  let root = Builder.root_obj eng (s 0) in
  let x = Builder.obj eng (s 0) in
  Builder.link eng ~src:root ~dst:x;
  let beacon = Builder.root_obj eng (s 1) in
  Builder.link eng ~src:root ~dst:beacon;
  let a = Mutator.spawn muts ~at:(s 0) in
  Alcotest.(check bool) "load root" true (Mutator.load_root a ~dst:"r");
  Alcotest.(check bool) "read x" true
    (Mutator.read_field a ~obj:"r" ~idx:1 ~dst:"x");
  Alcotest.(check bool) "read beacon" true
    (Mutator.read_field a ~obj:"r" ~idx:0 ~dst:"b");
  let arrived = ref false in
  Alcotest.(check bool) "travel" true
    (Mutator.travel a ~via:"b" ~k:(fun () -> arrived := true));
  Alcotest.(check bool) "in flight has refs" true
    (Engine.in_flight_refs eng <> []);
  run eng 1.;
  Alcotest.(check bool) "arrived" true !arrived;
  Alcotest.(check int) "agent at site 1" 1
    (Site_id.to_int (Mutator.agent_site a));
  (* Site 1 now has an outref for x, and site 0's inref lists site 1. *)
  Alcotest.(check bool) "outref created at 1" true
    (Tables.find_outref (Engine.site eng (s 1)).Site.tables x <> None);
  (match Tables.find_inref (Engine.site eng (s 0)).Site.tables x with
  | Some ir ->
      Alcotest.(check bool) "source 1 registered" true
        (Ioref.find_source ir (s 1) <> None)
  | None -> Alcotest.fail "inref for x missing");
  Alcotest.(check (list string)) "tables consistent after move" []
    (Dgc_oracle.Oracle.table_violations eng);
  (* Drop the variable: after local traces everywhere the outref and
     the inref source disappear again. *)
  ignore (Mutator.drop a "x");
  ignore (Mutator.drop a "b");
  ignore (Mutator.drop a "r");
  Local_gc.run eng (Engine.site eng (s 1));
  run eng 1.;
  Local_gc.run eng (Engine.site eng (s 1));
  run eng 1.;
  (match Tables.find_inref (Engine.site eng (s 0)).Site.tables x with
  | Some ir ->
      Alcotest.(check bool) "source removed after updates" true
        (Ioref.find_source ir (s 1) = None)
  | None -> ());
  Alcotest.(check (list string)) "tables consistent at the end" []
    (Dgc_oracle.Oracle.table_violations eng)

let test_vars_are_roots () =
  let eng = Engine.create (cfg 1) in
  Local_gc.install eng;
  let muts = Mutator.manager eng in
  let a = Mutator.spawn muts ~at:(s 0) in
  Alcotest.(check bool) "new obj" true (Mutator.new_obj a ~dst:"v");
  let o = Option.get (Mutator.var a "v") in
  Local_gc.run eng (Engine.site eng (s 0));
  Alcotest.(check bool) "var keeps object alive" true
    (Heap.mem (Engine.site eng (s 0)).Site.heap o);
  ignore (Mutator.drop a "v");
  Local_gc.run eng (Engine.site eng (s 0));
  Alcotest.(check bool) "dropped object collected" false
    (Heap.mem (Engine.site eng (s 0)).Site.heap o)

let test_mutator_failure_modes () =
  let eng = Engine.create (cfg 2) in
  Local_gc.install eng;
  let muts = Mutator.manager eng in
  let a = Mutator.spawn muts ~at:(s 0) in
  Alcotest.(check bool) "no roots at empty site" false
    (Mutator.load_root a ~dst:"v");
  Alcotest.(check bool) "missing var read" false
    (Mutator.read_field a ~obj:"nope" ~idx:0 ~dst:"v");
  Alcotest.(check bool) "missing var write" false
    (Mutator.write a ~obj:"nope" ~value:"nope");
  Alcotest.(check bool) "missing var drop" false (Mutator.drop a "nope");
  ignore (Mutator.new_obj a ~dst:"v");
  Alcotest.(check bool) "bad index" false
    (Mutator.read_field a ~obj:"v" ~idx:0 ~dst:"w");
  let remote = Builder.obj eng (s 1) in
  let root = Builder.root_obj eng (s 0) in
  Builder.link eng ~src:root ~dst:remote;
  ignore (Mutator.load_root a ~dst:"r");
  ignore (Mutator.read_field a ~obj:"r" ~idx:0 ~dst:"rem");
  Alcotest.(check bool) "write needs local object" false
    (Mutator.write a ~obj:"rem" ~value:"v");
  Alcotest.(check int) "failures counted" 6
    (Metrics.get (Engine.metrics eng) "mutator.op_failed")

let test_travel_same_site_is_sync () =
  let eng = Engine.create (cfg 2) in
  let muts = Mutator.manager eng in
  let a = Mutator.spawn muts ~at:(s 0) in
  ignore (Mutator.new_obj a ~dst:"v");
  let ran = ref false in
  Alcotest.(check bool) "travel ok" true
    (Mutator.travel a ~via:"v" ~k:(fun () -> ran := true));
  Alcotest.(check bool) "continuation ran synchronously" true !ran;
  Alcotest.(check bool) "not traveling" false (Mutator.traveling a)

(* --- crash parking --------------------------------------------------------- *)

let test_crash_parks_base_messages () =
  let eng = Engine.create (cfg 2) in
  Local_gc.install eng;
  let muts = Mutator.manager eng in
  let root0 = Builder.root_obj eng (s 0) in
  let target = Builder.root_obj eng (s 1) in
  Builder.link eng ~src:root0 ~dst:target;
  let a = Mutator.spawn muts ~at:(s 0) in
  ignore (Mutator.load_root a ~dst:"r");
  ignore (Mutator.read_field a ~obj:"r" ~idx:0 ~dst:"t");
  Engine.crash eng (s 1);
  let arrived = ref false in
  ignore (Mutator.travel a ~via:"t" ~k:(fun () -> arrived := true));
  run eng 2.;
  Alcotest.(check bool) "move parked while crashed" false !arrived;
  Engine.recover eng (s 1);
  run eng 2.;
  Alcotest.(check bool) "delivered after recovery" true !arrived

type Protocol.ext += Test_probe

let test_ext_dropped_to_crashed () =
  let eng = Engine.create (cfg 2) in
  Engine.crash eng (s 1);
  Engine.send eng ~src:(s 0) ~dst:(s 1) (Protocol.Ext Test_probe);
  Alcotest.(check int) "counted as dropped" 1
    (Metrics.get (Engine.metrics eng) "msg.dropped.crashed")

(* --- plain local GC --------------------------------------------------------- *)

let test_local_gc_basics () =
  let eng = Engine.create (cfg 2) in
  Local_gc.install eng;
  let root = Builder.root_obj eng (s 0) in
  let keep = Builder.obj eng (s 0) in
  let lose = Builder.obj eng (s 0) in
  let remote_kept = Builder.obj eng (s 1) in
  Builder.link eng ~src:root ~dst:keep;
  Builder.link eng ~src:lose ~dst:remote_kept;
  Local_gc.run eng (Engine.site eng (s 0));
  let heap0 = (Engine.site eng (s 0)).Site.heap in
  Alcotest.(check bool) "rooted kept" true (Heap.mem heap0 keep);
  Alcotest.(check bool) "unrooted freed" false (Heap.mem heap0 lose);
  (* a freshly created outref gets one round of grace, then goes away;
     after the update lands and site 1 traces, so does the object *)
  Alcotest.(check bool) "fresh outref kept one round" true
    (Tables.find_outref (Engine.site eng (s 0)).Site.tables remote_kept <> None);
  Local_gc.run eng (Engine.site eng (s 0));
  Alcotest.(check bool) "outref dropped" true
    (Tables.find_outref (Engine.site eng (s 0)).Site.tables remote_kept = None);
  run eng 1.;
  Local_gc.run eng (Engine.site eng (s 1));
  Alcotest.(check bool) "remote garbage freed after update" false
    (Heap.mem (Engine.site eng (s 1)).Site.heap remote_kept)

let test_local_gc_keeps_inref_rooted () =
  let eng = Engine.create (cfg 2) in
  Local_gc.install eng;
  let holder = Builder.root_obj eng (s 0) in
  let target = Builder.obj eng (s 1) in
  Builder.link eng ~src:holder ~dst:target;
  Local_gc.run eng (Engine.site eng (s 1));
  Alcotest.(check bool) "inref keeps object" true
    (Heap.mem (Engine.site eng (s 1)).Site.heap target);
  (* flagged inrefs are not roots *)
  (match Tables.find_inref (Engine.site eng (s 1)).Site.tables target with
  | Some ir -> ir.Ioref.ir_flagged <- true
  | None -> Alcotest.fail "inref missing");
  Local_gc.run eng (Engine.site eng (s 1));
  Alcotest.(check bool) "flagged inref is not a root" false
    (Heap.mem (Engine.site eng (s 1)).Site.heap target)

(* --- §6.1.2: the four remote-copy cases, message level ------------------ *)

(* A reference arriving by Move at a site exercising each case. The
   barrier effects require the core collector, so these use Sim. *)
let arrival_fixture () =
  let cfg =
    {
      Dgc_rts.Config.default with
      Dgc_rts.Config.n_sites = 3;
      delta = 3;
      trace_duration = Sim_time.zero;
      latency = Latency.Fixed (Sim_time.of_millis 5.);
    }
  in
  let sim = Dgc_core.Sim.make ~cfg () in
  (sim, sim.Dgc_core.Sim.eng)

let send_move eng ~src ~dst r =
  Engine.send eng ~src ~dst
    (Protocol.Move { agent = 999; refs = [ r ]; token = Engine.fresh_token eng })

let test_case1_local_ref_applies_barrier () =
  let sim, eng = arrival_fixture () in
  (* suspected inref at site 0, with the holder kept alive at site 1 *)
  let target = Builder.obj eng (s 0) in
  let holder = Builder.root_obj eng (s 1) in
  Builder.link eng ~src:holder ~dst:target;
  Builder.set_source_distance eng ~inref:target ~src:(s 1) 50;
  (* only site 0 traces: the artificial distance stays put *)
  Dgc_core.Collector.force_local_trace sim.Dgc_core.Sim.col (s 0);
  (match Tables.find_inref (Engine.site eng (s 0)).Site.tables target with
  | Some ir -> Alcotest.(check bool) "suspected" true ir.Ioref.ir_suspected
  | None -> Alcotest.fail "inref missing");
  send_move eng ~src:(s 1) ~dst:(s 0) target;
  run eng 1.;
  match Tables.find_inref (Engine.site eng (s 0)).Site.tables target with
  | Some ir ->
      Alcotest.(check bool) "case 1: inref force-cleaned" true
        ir.Ioref.ir_forced_clean
  | None -> Alcotest.fail "inref missing"

let test_case2_known_clean_outref_no_insert () =
  let _sim, eng = arrival_fixture () in
  let root = Builder.root_obj eng (s 0) in
  let remote = Builder.obj eng (s 2) in
  Builder.link eng ~src:root ~dst:remote;
  let before = Metrics.get (Engine.metrics eng) "msg.insert" in
  send_move eng ~src:(s 1) ~dst:(s 0) remote;
  run eng 1.;
  Alcotest.(check int) "case 2: no insert for a known outref" before
    (Metrics.get (Engine.metrics eng) "msg.insert")

let test_case3_suspected_outref_cleaned () =
  let sim, eng = arrival_fixture () in
  (* a garbage chain 1 -> 0 -> 2 whose distances we push over delta so
     site 0's outref becomes suspected *)
  let a = Builder.obj eng (s 0) in
  let b = Builder.obj eng (s 2) in
  let holder = Builder.obj eng (s 1) in
  Builder.link eng ~src:holder ~dst:a;
  Builder.link eng ~src:a ~dst:b;
  Builder.set_source_distance eng ~inref:a ~src:(s 1) 50;
  Dgc_core.Collector.force_local_trace_all sim.Dgc_core.Sim.col;
  (match Tables.find_outref (Engine.site eng (s 0)).Site.tables b with
  | Some o -> Alcotest.(check bool) "suspected" true o.Ioref.or_suspected
  | None -> Alcotest.fail "outref missing");
  send_move eng ~src:(s 1) ~dst:(s 0) b;
  run eng 1.;
  match Tables.find_outref (Engine.site eng (s 0)).Site.tables b with
  | Some o ->
      Alcotest.(check bool) "case 3: outref force-cleaned" true
        o.Ioref.or_forced_clean
  | None -> Alcotest.fail "outref missing"

let test_case4_created_outref_insert_roundtrip () =
  let _sim, eng = arrival_fixture () in
  let remote = Builder.root_obj eng (s 2) in
  Alcotest.(check bool) "no outref at site 0 yet" true
    (Tables.find_outref (Engine.site eng (s 0)).Site.tables remote = None);
  send_move eng ~src:(s 1) ~dst:(s 0) remote;
  run eng 1.;
  (* created, registered at the owner, and the insert pin released *)
  (match Tables.find_outref (Engine.site eng (s 0)).Site.tables remote with
  | Some o ->
      Alcotest.(check bool) "case 4: outref created fresh+clean" true
        (Ioref.outref_clean o);
      Alcotest.(check int) "insert pin released after Insert_done" 0
        o.Ioref.or_pins
  | None -> Alcotest.fail "outref not created");
  match Tables.find_inref (Engine.site eng (s 2)).Site.tables remote with
  | Some ir ->
      Alcotest.(check bool) "owner registered the new source" true
        (Ioref.find_source ir (s 0) <> None)
  | None -> Alcotest.fail "owner inref missing"

(* --- the scripted program interpreter ------------------------------------ *)

let test_run_program_all_instructions () =
  let eng = Engine.create (cfg 2) in
  Local_gc.install eng;
  let muts = Mutator.manager eng in
  let root0 = Builder.root_obj eng (s 0) in
  let remote = Builder.root_obj eng (s 1) in
  Builder.link eng ~src:root0 ~dst:remote;
  let a = Mutator.spawn muts ~at:(s 0) in
  let finished = ref false in
  Mutator.run_program a
    ~on_done:(fun () -> finished := true)
    [
      Mutator.Load_root "r";
      Mutator.Load_root_named (root0, "r2");
      Mutator.Read { obj = "r"; idx = 0; dst = "t" };
      Mutator.Travel "t";
      (* now at site 1 *)
      Mutator.New "n";
      Mutator.Write { obj = "t"; value = "n" };
      Mutator.Copy { src = "n"; dst = "n2" };
      Mutator.Wait (Sim_time.of_millis 50.);
      Mutator.Unlink { obj = "t"; target = "n" };
      Mutator.Write { obj = "t"; value = "n2" };
      Mutator.Drop "n";
    ];
  run eng 5.;
  Alcotest.(check bool) "program completed" true !finished;
  Alcotest.(check int) "agent moved" 1 (Site_id.to_int (Mutator.agent_site a));
  (* the new object ended up linked under the remote root *)
  let n2 = Option.get (Mutator.var a "n2") in
  Alcotest.(check bool) "written reference present" true
    (List.exists (Oid.equal n2)
       (Heap.fields (Engine.site eng (s 1)).Site.heap remote));
  Alcotest.(check (list string)) "tables consistent" []
    (Dgc_oracle.Oracle.table_violations eng)

let () =
  Alcotest.run "rts"
    [
      ( "ioref",
        [
          Alcotest.test_case "source lists" `Quick test_inref_sources;
          Alcotest.test_case "clean predicates" `Quick test_clean_predicates;
        ] );
      ("tables", [ Alcotest.test_case "tables" `Quick test_tables ]);
      ("protocol", [ Alcotest.test_case "kinds and refs" `Quick test_protocol_kinds ]);
      ( "builder",
        [
          Alcotest.test_case "tables consistent" `Quick
            test_builder_tables_consistent;
        ] );
      ( "engine",
        [
          Alcotest.test_case "move + insert protocol" `Quick
            test_move_insert_protocol;
          Alcotest.test_case "crash parks base messages" `Quick
            test_crash_parks_base_messages;
          Alcotest.test_case "ext dropped to crashed site" `Quick
            test_ext_dropped_to_crashed;
        ] );
      ( "mutator",
        [
          Alcotest.test_case "variables are roots" `Quick test_vars_are_roots;
          Alcotest.test_case "failure modes are total" `Quick
            test_mutator_failure_modes;
          Alcotest.test_case "same-site travel synchronous" `Quick
            test_travel_same_site_is_sync;
        ] );
      ( "local-gc",
        [
          Alcotest.test_case "mark-sweep + updates" `Quick test_local_gc_basics;
          Alcotest.test_case "inref roots and flags" `Quick
            test_local_gc_keeps_inref_rooted;
        ] );
      ( "remote-copy-cases",
        [
          Alcotest.test_case "case 1: local ref, barrier" `Quick
            test_case1_local_ref_applies_barrier;
          Alcotest.test_case "case 2: known clean outref" `Quick
            test_case2_known_clean_outref_no_insert;
          Alcotest.test_case "case 3: suspected outref cleaned" `Quick
            test_case3_suspected_outref_cleaned;
          Alcotest.test_case "case 4: insert round-trip" `Quick
            test_case4_created_outref_insert_roundtrip;
        ] );
      ( "programs",
        [
          Alcotest.test_case "all instructions" `Quick
            test_run_program_all_instructions;
        ] );
    ]
