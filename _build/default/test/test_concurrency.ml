(* Concurrency (§6): the Figure 5/6 races between a mutator and a back
   trace, the transfer barrier, the clean rule, window replay, multiple
   concurrent traces, message loss and site crashes. *)

open Dgc_prelude
open Dgc_simcore
open Dgc_heap
open Dgc_rts
open Dgc_core
open Dgc_workload

let ms = Sim_time.of_millis

let base_cfg =
  {
    Config.default with
    Config.delta = 3;
    threshold2 = 6;
    threshold_bump = 4;
    trace_duration = Sim_time.zero;
    latency = Latency.Fixed (ms 10.);
  }

let verdict = Alcotest.testable Verdict.pp Verdict.equal

let find_inref eng r =
  Tables.find_inref (Engine.site eng (Oid.site r)).Site.tables r

(* The deterministic Figure 5 race lives in Scenario.fig5_race; see
   its documentation for the exact timeline. *)
let run_fig5_race cfg = Scenario.fig5_race ~cfg ()

let test_fig5_safe_with_barriers () =
  let f, outcome, violation = run_fig5_race base_cfg in
  let eng = f.Scenario.f5_sim.Sim.eng in
  Alcotest.(check (option string)) "no safety violation" None violation;
  (match outcome with
  | Some v -> Alcotest.check verdict "trace outcome" Verdict.Live v
  | None -> Alcotest.fail "back trace did not complete");
  (* The live tail survives. *)
  Alcotest.(check bool) "z alive" true
    (Heap.mem (Engine.site eng f.Scenario.f5_q).Site.heap f.Scenario.f5_z);
  Alcotest.(check bool) "g alive" true
    (Heap.mem (Engine.site eng f.Scenario.f5_p).Site.heap f.Scenario.f5_g);
  (* And no live inref was flagged. *)
  (match find_inref eng f.Scenario.f5_g with
  | Some ir -> Alcotest.(check bool) "inref g not flagged" false ir.Ioref.ir_flagged
  | None -> Alcotest.fail "inref g missing")

let test_fig5_unsafe_without_transfer_barrier () =
  let cfg = { base_cfg with Config.enable_transfer_barrier = false } in
  let _, outcome, violation = run_fig5_race cfg in
  (* The race produces a wrong Garbage verdict and the oracle catches
     the resulting unsafe sweep — demonstrating that the barrier is
     load-bearing. *)
  (match outcome with
  | Some v -> Alcotest.check verdict "wrong outcome without barrier"
                Verdict.Garbage v
  | None -> Alcotest.fail "back trace did not complete");
  Alcotest.(check bool) "safety violation detected" true (violation <> None)

let test_fig5_barrier_cleans_inref_and_outset () =
  (* After the walk, the traversal of f must have force-cleaned inref f
     and outref g at Q (§6.1). Uses a later trace start so the walk and
     trace do not interleave. *)
  let f = Scenario.fig5 ~cfg:base_cfg () in
  let sim = f.Scenario.f5_sim in
  let eng = sim.Sim.eng in
  Scenario.settle sim ~rounds:9;
  let agent = Mutator.spawn sim.Sim.muts ~at:f.Scenario.f5_p in
  Scenario.walk sim agent ~start_root:f.Scenario.f5_a
    ~path:
      [
        f.Scenario.f5_b;
        f.Scenario.f5_c;
        f.Scenario.f5_d;
        f.Scenario.f5_e;
        f.Scenario.f5_f;
      ]
    ~k:(fun () -> ())
    ();
  Sim.run_for sim (Sim_time.of_seconds 2.);
  (match find_inref eng f.Scenario.f5_f with
  | Some ir ->
      Alcotest.(check bool) "inref f forced clean" true
        ir.Ioref.ir_forced_clean
  | None -> Alcotest.fail "inref f missing");
  match
    Tables.find_outref (Engine.site eng f.Scenario.f5_q).Site.tables
      f.Scenario.f5_g
  with
  | Some o ->
      Alcotest.(check bool) "outref g forced clean" true
        o.Ioref.or_forced_clean
  | None -> Alcotest.fail "outref g missing"

(* --- clean rule -------------------------------------------------------- *)

let test_clean_rule_forces_live () =
  (* A trace parks a frame at inref f (waiting on R); cleaning f while
     the frame is active forces the whole trace Live. *)
  let f = Scenario.fig5 ~cfg:base_cfg () in
  let sim = f.Scenario.f5_sim in
  let eng = sim.Sim.eng in
  Scenario.settle sim ~rounds:9;
  let outcome = ref None in
  Back_trace.on_outcome (Collector.back sim.Sim.col) (fun _ v _ ->
      outcome := Some v);
  ignore
    (Collector.start_back_trace sim.Sim.col f.Scenario.f5_q f.Scenario.f5_g);
  (* 5ms later the trace is waiting for R's reply; the barrier point
     fires on f (as a traversal would). *)
  Engine.schedule eng ~delay:(ms 5.) (fun () ->
      (Engine.site eng f.Scenario.f5_q).Site.hooks.Site.h_ref_arrived
        f.Scenario.f5_f);
  Sim.run_for sim (Sim_time.of_seconds 2.);
  match !outcome with
  | Some v -> Alcotest.check verdict "forced live" Verdict.Live v
  | None -> Alcotest.fail "trace did not complete"

let test_without_clean_rule_same_schedule_is_garbage () =
  (* Sanity check of the ablation toggle: same schedule, rule off — the
     mid-flight clean no longer rescues the trace. (The underlying
     state here is genuinely garbage-free of mutation, so Garbage is
     the natural verdict of the stale exploration.) *)
  let cfg = { base_cfg with Config.enable_clean_rule = false } in
  let f = Scenario.fig5 ~cfg () in
  let sim = f.Scenario.f5_sim in
  let eng = sim.Sim.eng in
  Scenario.settle sim ~rounds:9;
  let outcome = ref None in
  Back_trace.on_outcome (Collector.back sim.Sim.col) (fun _ v _ ->
      outcome := Some v);
  ignore
    (Collector.start_back_trace sim.Sim.col f.Scenario.f5_q f.Scenario.f5_g);
  Engine.schedule eng ~delay:(ms 5.) (fun () ->
      (Engine.site eng f.Scenario.f5_q).Site.hooks.Site.h_ref_arrived
        f.Scenario.f5_f);
  Sim.run_for sim (Sim_time.of_seconds 2.);
  match !outcome with
  | Some v ->
      (* Without the rule the outcome is whatever the stale exploration
         finds — here Live via the still-intact old path, showing the
         toggle changes behaviour only through the rule itself. *)
      Alcotest.check verdict "outcome without rule" Verdict.Live v
  | None -> Alcotest.fail "trace did not complete"

(* --- fig6: forked trace under racing mutation, many timings ----------- *)

let test_fig6_two_branch_race_is_safe () =
  (* inref g has sources Q and R; the trace forks. Race the same
     mutation against trace starts at many offsets: with the full §6
     machinery the system never kills a live object. *)
  let offsets = List.init 10 (fun i -> float_of_int (5 * (i + 1))) in
  List.iter
    (fun off ->
      let f, w = Scenario.fig6 ~cfg:base_cfg () in
      let sim = f.Scenario.f5_sim in
      let eng = sim.Sim.eng in
      ignore w;
      Scenario.settle sim ~rounds:10;
      let agent = Mutator.spawn sim.Sim.muts ~at:f.Scenario.f5_p in
      Scenario.walk sim agent ~start_root:f.Scenario.f5_a
        ~path:
          [
            f.Scenario.f5_b;
            f.Scenario.f5_c;
            f.Scenario.f5_d;
            f.Scenario.f5_e;
            f.Scenario.f5_f;
            f.Scenario.f5_x;
            f.Scenario.f5_z;
          ]
        ~captures:[ (f.Scenario.f5_b, "b") ]
        ~k:(fun () ->
          let heap_q = (Engine.site eng f.Scenario.f5_q).Site.heap in
          let y_idx =
            let fields = Heap.fields heap_q f.Scenario.f5_b in
            let rec find i = function
              | [] -> -1
              | fld :: tl ->
                  if Oid.equal fld f.Scenario.f5_y then i else find (i + 1) tl
            in
            find 0 fields
          in
          if y_idx >= 0 then begin
            ignore (Mutator.read_field agent ~obj:"b" ~idx:y_idx ~dst:"y");
            ignore (Mutator.write agent ~obj:"y" ~value:"cur")
          end;
          Builder.unlink eng ~src:f.Scenario.f5_d ~dst:f.Scenario.f5_e;
          Collector.force_local_trace sim.Sim.col f.Scenario.f5_s)
        ();
      Engine.schedule eng ~delay:(ms off) (fun () ->
          ignore
            (Collector.start_back_trace sim.Sim.col f.Scenario.f5_p
               f.Scenario.f5_h));
      (try
         Sim.run_for sim (Sim_time.of_seconds 5.);
         Collector.force_local_trace_all sim.Sim.col;
         Sim.run_for sim (Sim_time.of_seconds 5.);
         Collector.force_local_trace_all sim.Sim.col
       with Dgc_oracle.Oracle.Safety_violation m ->
         Alcotest.failf "offset %.0fms: safety violation: %s" off m);
      Alcotest.(check bool)
        (Format.asprintf "offset %.0fms: z alive" off)
        true
        (Heap.mem (Engine.site eng f.Scenario.f5_q).Site.heap f.Scenario.f5_z);
      Alcotest.(check bool)
        (Format.asprintf "offset %.0fms: g alive" off)
        true
        (Heap.mem (Engine.site eng f.Scenario.f5_p).Site.heap f.Scenario.f5_g))
    offsets

(* --- §6.3: the non-atomic mutator -------------------------------------- *)

let test_variable_stash_across_traces () =
  (* The mutator traverses a remote reference, stashes what it found in
     a variable, sits through local traces (which revert the barrier's
     forced-clean status), and only then writes the stashed reference
     into a local object. §6.3's argument: variables are application
     roots, so everything reachable from them stays clean and the write
     is safe. *)
  let f = Scenario.fig5 ~cfg:base_cfg () in
  let sim = f.Scenario.f5_sim in
  let eng = sim.Sim.eng in
  Scenario.settle sim ~rounds:9;
  let agent = Mutator.spawn sim.Sim.muts ~at:f.Scenario.f5_p in
  let stashed = ref false in
  (* Walk to z and stash it (plus y's parent b), then stop. *)
  Scenario.walk sim agent ~start_root:f.Scenario.f5_a
    ~path:
      [
        f.Scenario.f5_b;
        f.Scenario.f5_c;
        f.Scenario.f5_d;
        f.Scenario.f5_e;
        f.Scenario.f5_f;
        f.Scenario.f5_x;
        f.Scenario.f5_z;
      ]
    ~captures:[ (f.Scenario.f5_b, "b") ]
    ~k:(fun () -> stashed := true)
    ();
  Sim.run_for sim (Sim_time.of_seconds 2.);
  Alcotest.(check bool) "stash in hand" true !stashed;
  (* Local traces run: the barrier's forced-clean marks are recomputed
     away, but the variables keep the suspects' objects traced. *)
  Scenario.settle sim ~rounds:3;
  (* Now mutate from the stash: write z into y, cut the old path. *)
  let heap_q = (Engine.site eng f.Scenario.f5_q).Site.heap in
  let y_idx =
    let rec find i = function
      | [] -> Alcotest.fail "y not a field of b"
      | fld :: tl -> if Oid.equal fld f.Scenario.f5_y then i else find (i + 1) tl
    in
    find 0 (Heap.fields heap_q f.Scenario.f5_b)
  in
  Alcotest.(check bool) "read y" true
    (Mutator.read_field agent ~obj:"b" ~idx:y_idx ~dst:"y");
  Alcotest.(check bool) "write stashed z into y" true
    (Mutator.write agent ~obj:"y" ~value:"cur");
  Builder.unlink eng ~src:f.Scenario.f5_d ~dst:f.Scenario.f5_e;
  (* Drop the stash, run everything to quiescence. *)
  List.iter (fun (n, _) -> ignore (Mutator.drop agent n)) (Mutator.vars agent);
  Sim.start sim;
  (try ignore (Sim.collect_all sim ~max_rounds:40 ())
   with Dgc_oracle.Oracle.Safety_violation m ->
     Alcotest.failf "unsafe: %s" m);
  Alcotest.(check bool) "z alive via the new path" true
    (Heap.mem heap_q f.Scenario.f5_z);
  Alcotest.(check bool) "g alive via the new path" true
    (Heap.mem (Engine.site eng f.Scenario.f5_p).Site.heap f.Scenario.f5_g);
  (* The severed tail (e, f, x) is garbage and must be gone. *)
  Alcotest.(check bool) "x collected" false (Heap.mem heap_q f.Scenario.f5_x);
  Alcotest.(check bool) "f collected" false (Heap.mem heap_q f.Scenario.f5_f)

(* --- window replay ----------------------------------------------------- *)

let test_back_trace_uses_old_copy_during_window () =
  (* §6.2: "A back trace visiting the site in the meantime uses the old
     copy." Open a window at Q, delete the path that feeds outref g's
     inset, and run a trace before the window closes: the old insets
     still lead the trace backwards to the clean root, so it returns
     Live. After the swap, the same trace sees the deletion. *)
  let cfg =
    { base_cfg with Config.trace_duration = Sim_time.of_seconds 5. }
  in
  let f = Scenario.fig5 ~cfg () in
  let sim = f.Scenario.f5_sim in
  let eng = sim.Sim.eng in
  Scenario.settle sim ~rounds:9;
  let q_site = Engine.site eng f.Scenario.f5_q in
  (* Cut f -> x inside Q, then open the window: the snapshot no longer
     sees the edge, but the OLD tables (insets) still do. *)
  Builder.unlink eng ~src:f.Scenario.f5_f ~dst:f.Scenario.f5_x;
  q_site.Site.hooks.Site.h_run_local_trace ();
  Alcotest.(check bool) "window open" true
    (Collector.in_window sim.Sim.col f.Scenario.f5_q);
  let outcome = ref None in
  Back_trace.on_outcome (Collector.back sim.Sim.col) (fun _ v _ ->
      outcome := Some v);
  ignore
    (Collector.start_back_trace sim.Sim.col f.Scenario.f5_q f.Scenario.f5_g);
  Sim.run_for sim (Sim_time.of_seconds 2.);
  (match !outcome with
  | Some v ->
      (* Old inset {f} -> inref f -> ... -> clean outref d: Live. *)
      Alcotest.check verdict "old copy used mid-window" Verdict.Live v
  | None -> Alcotest.fail "trace did not complete");
  (* Close the window; the new copy reflects the deletion. *)
  Sim.run_for sim (Sim_time.of_seconds 10.);
  Alcotest.(check bool) "window closed" false
    (Collector.in_window sim.Sim.col f.Scenario.f5_q);
  (* The deletion made Q's whole x-z tail garbage: the swap sweeps it
     and drops outref g (sending the removal update to P). *)
  Alcotest.(check bool) "outref g removed by the swap" true
    (Tables.find_outref q_site.Site.tables f.Scenario.f5_g = None);
  Alcotest.(check bool) "z swept with the tail" false
    (Heap.mem q_site.Site.heap f.Scenario.f5_z)

let test_window_clean_replay () =
  (* A barrier clean during an open trace window must survive the swap
     (replayed onto the new copy, §6.2). *)
  let cfg =
    { base_cfg with Config.trace_duration = Sim_time.of_seconds 5. }
  in
  let f = Scenario.fig5 ~cfg () in
  let sim = f.Scenario.f5_sim in
  let eng = sim.Sim.eng in
  (* Converge with atomic traces first. *)
  Scenario.settle sim ~rounds:9;
  let q_site = Engine.site eng f.Scenario.f5_q in
  (* Open a window at Q, then fire the barrier mid-window. *)
  q_site.Site.hooks.Site.h_run_local_trace ();
  Alcotest.(check bool) "window open" true
    (Collector.in_window sim.Sim.col f.Scenario.f5_q);
  Engine.schedule eng ~delay:(Sim_time.of_seconds 1.) (fun () ->
      q_site.Site.hooks.Site.h_ref_arrived f.Scenario.f5_f);
  Sim.run_for sim (Sim_time.of_seconds 10.);
  Alcotest.(check bool) "window closed" false
    (Collector.in_window sim.Sim.col f.Scenario.f5_q);
  (match find_inref eng f.Scenario.f5_f with
  | Some ir ->
      Alcotest.(check bool) "inref f still forced clean after swap" true
        ir.Ioref.ir_forced_clean
  | None -> Alcotest.fail "inref f missing");
  match Tables.find_outref q_site.Site.tables f.Scenario.f5_g with
  | Some o ->
      Alcotest.(check bool) "outref g still forced clean after swap" true
        o.Ioref.or_forced_clean
  | None -> Alcotest.fail "outref g missing"

let test_crash_during_open_window () =
  (* A site crashes while its trace window is open: the window is
     abandoned (no half-applied state), and after recovery the next
     scheduled trace completes normally. *)
  let cfg =
    { base_cfg with Config.trace_duration = Sim_time.of_seconds 5. }
  in
  let f = Scenario.fig5 ~cfg () in
  let sim = f.Scenario.f5_sim in
  let eng = sim.Sim.eng in
  Scenario.settle sim ~rounds:4;
  let q = f.Scenario.f5_q in
  let epoch_before = (Engine.site eng q).Site.trace_epoch in
  (Engine.site eng q).Site.hooks.Site.h_run_local_trace ();
  Alcotest.(check bool) "window open" true (Collector.in_window sim.Sim.col q);
  Engine.crash eng q;
  Sim.run_for sim (Sim_time.of_seconds 10.);
  Alcotest.(check bool) "window abandoned" false
    (Collector.in_window sim.Sim.col q);
  Alcotest.(check int) "no trace counted while crashed" epoch_before
    (Engine.site eng q).Site.trace_epoch;
  Engine.recover eng q;
  Collector.force_local_trace sim.Sim.col q;
  Alcotest.(check int) "trace completes after recovery" (epoch_before + 1)
    (Engine.site eng q).Site.trace_epoch;
  (* nothing half-applied: tables still sane *)
  Alcotest.(check (list string)) "tables consistent" []
    (Dgc_oracle.Oracle.table_violations eng)

let test_initiator_crash_mid_trace () =
  (* The initiator dies while its trace is in flight: participants never
     hear an outcome, clear their marks via the TTL, and the garbage is
     collected after recovery. *)
  let cfg =
    {
      base_cfg with
      Config.n_sites = 2;
      back_call_timeout = Sim_time.of_seconds 3.;
      visited_ttl = Sim_time.of_seconds 6.;
    }
  in
  let sim = Sim.make ~cfg () in
  let eng = sim.Sim.eng in
  ignore
    (Graph_gen.ring eng
       ~sites:[ Site_id.of_int 0; Site_id.of_int 1 ]
       ~per_site:1 ~rooted:false);
  Scenario.settle sim ~rounds:8;
  let initiator = ref None in
  Array.iter
    (fun st ->
      Tables.iter_outrefs st.Site.tables (fun o ->
          if !initiator = None && not (Ioref.outref_clean o) then
            if
              Collector.start_back_trace sim.Sim.col st.Site.id
                o.Ioref.or_target
              <> None
            then initiator := Some st.Site.id))
    (Engine.sites eng);
  let init_site = Option.get !initiator in
  (* Kill the initiator before replies can land. *)
  Engine.crash eng init_site;
  Sim.run_for sim (Sim_time.of_seconds 30.);
  (* The surviving participant cleared its state. *)
  Array.iter
    (fun st ->
      if not st.Site.crashed then begin
        Tables.iter_inrefs st.Site.tables (fun ir ->
            Alcotest.(check bool) "marks cleared" true
              (Trace_id.Set.is_empty ir.Ioref.ir_visited));
        Alcotest.(check int) "no stuck frames" 0
          (Back_trace.active_frames (Collector.back sim.Sim.col) st.Site.id)
      end)
    (Engine.sites eng);
  Engine.recover eng init_site;
  Sim.start sim;
  let ok = Sim.collect_all sim ~max_rounds:40 () in
  Alcotest.(check bool) "collected after the initiator recovers" true ok

(* --- multiple concurrent traces (§4.7) --------------------------------- *)

let test_concurrent_traces_same_cycle () =
  let cfg = { base_cfg with Config.n_sites = 3 } in
  let sim = Sim.make ~cfg () in
  let eng = sim.Sim.eng in
  let sites = [ Site_id.of_int 0; Site_id.of_int 1; Site_id.of_int 2 ] in
  let objs = Graph_gen.ring eng ~sites ~per_site:1 ~rooted:false in
  Scenario.settle sim ~rounds:8;
  (* Start a trace from every suspected outref at once. *)
  let started = ref 0 in
  List.iter
    (fun o ->
      List.iter
        (fun site ->
          match Tables.find_outref (Engine.site eng site).Site.tables o with
          | Some _ ->
              if Collector.start_back_trace sim.Sim.col site o <> None then
                incr started
          | None -> ())
        sites)
    objs;
  Alcotest.(check bool) "several traces started" true (!started >= 2);
  Sim.run_for sim (Sim_time.of_seconds 10.);
  Collector.force_local_trace_all sim.Sim.col;
  Sim.run_for sim (Sim_time.of_seconds 5.);
  Collector.force_local_trace_all sim.Sim.col;
  Sim.run_for sim (Sim_time.of_seconds 5.);
  Collector.force_local_trace_all sim.Sim.col;
  Alcotest.(check int) "cycle fully collected despite overlapping traces" 0
    (Dgc_oracle.Oracle.garbage_count eng)

(* --- message loss (§4.6) ------------------------------------------------ *)

let test_message_loss_is_safe_and_recoverable () =
  let cfg =
    { base_cfg with Config.n_sites = 3; ext_drop = 0.4; seed = 7 }
  in
  let sim = Sim.make ~cfg () in
  let eng = sim.Sim.eng in
  let sites = [ Site_id.of_int 0; Site_id.of_int 1; Site_id.of_int 2 ] in
  ignore (Graph_gen.ring eng ~sites ~per_site:2 ~rooted:true);
  ignore (Graph_gen.ring eng ~sites ~per_site:2 ~rooted:false);
  Sim.start sim;
  let ok = Sim.collect_all sim ~max_rounds:60 () in
  Alcotest.(check bool) "garbage collected despite 40% loss" true ok

(* --- crashes ------------------------------------------------------------ *)

let test_crash_unrelated_site_no_delay () =
  (* Locality: a crashed site that holds none of the cycle does not
     delay its collection. *)
  let cfg = { base_cfg with Config.n_sites = 4 } in
  let sim = Sim.make ~cfg () in
  let eng = sim.Sim.eng in
  ignore
    (Graph_gen.ring eng
       ~sites:[ Site_id.of_int 0; Site_id.of_int 1 ]
       ~per_site:1 ~rooted:false);
  Engine.crash eng (Site_id.of_int 3);
  Sim.start sim;
  let ok = Sim.collect_all sim ~max_rounds:30 () in
  Alcotest.(check bool) "cycle collected with unrelated site down" true ok

let test_crash_cycle_site_delays_then_recovers () =
  let cfg = { base_cfg with Config.n_sites = 2 } in
  let sim = Sim.make ~cfg () in
  let eng = sim.Sim.eng in
  ignore
    (Graph_gen.ring eng
       ~sites:[ Site_id.of_int 0; Site_id.of_int 1 ]
       ~per_site:1 ~rooted:false);
  Engine.crash eng (Site_id.of_int 1);
  Sim.start sim;
  Sim.run_rounds sim 15;
  Alcotest.(check bool) "cycle not collected while a member is down" true
    (Dgc_oracle.Oracle.garbage_count eng > 0);
  Engine.recover eng (Site_id.of_int 1);
  let ok = Sim.collect_all sim ~max_rounds:40 () in
  Alcotest.(check bool) "collected after recovery" true ok

let () =
  Alcotest.run "concurrency"
    [
      ( "fig5",
        [
          Alcotest.test_case "race is safe with barriers" `Quick
            test_fig5_safe_with_barriers;
          Alcotest.test_case "race is unsafe without the transfer barrier"
            `Quick test_fig5_unsafe_without_transfer_barrier;
          Alcotest.test_case "barrier cleans inref and outset" `Quick
            test_fig5_barrier_cleans_inref_and_outset;
        ] );
      ( "clean-rule",
        [
          Alcotest.test_case "cleaning an active ioref forces Live" `Quick
            test_clean_rule_forces_live;
          Alcotest.test_case "ablation toggle sanity" `Quick
            test_without_clean_rule_same_schedule_is_garbage;
        ] );
      ( "fig6",
        [
          Alcotest.test_case "two-branch race safe across timings" `Slow
            test_fig6_two_branch_race_is_safe;
        ] );
      ( "mutator",
        [
          Alcotest.test_case "variable stash across traces (§6.3)" `Quick
            test_variable_stash_across_traces;
        ] );
      ( "window",
        [
          Alcotest.test_case "barrier clean replayed onto new copy" `Quick
            test_window_clean_replay;
          Alcotest.test_case "back trace uses the old copy mid-window" `Quick
            test_back_trace_uses_old_copy_during_window;
        ] );
      ( "multi-trace",
        [
          Alcotest.test_case "concurrent traces on one cycle" `Quick
            test_concurrent_traces_same_cycle;
        ] );
      ( "faults",
        [
          Alcotest.test_case "crash during an open window" `Quick
            test_crash_during_open_window;
          Alcotest.test_case "initiator crash mid-trace" `Quick
            test_initiator_crash_mid_trace;
          Alcotest.test_case "40% message loss" `Quick
            test_message_loss_is_safe_and_recoverable;
          Alcotest.test_case "unrelated crash does not delay" `Quick
            test_crash_unrelated_site_no_delay;
          Alcotest.test_case "member crash delays, recovery collects" `Quick
            test_crash_cycle_site_delays_then_recovers;
        ] );
    ]
