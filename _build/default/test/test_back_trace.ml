(* Back tracing (§4): the figure scenarios, verdicts, thresholds,
   report phase, timeouts, and multiple concurrent traces. *)

open Dgc_prelude
open Dgc_simcore
open Dgc_heap
open Dgc_rts
open Dgc_core
open Dgc_workload

let cfg_fast =
  {
    Config.default with
    Config.delta = 3;
    threshold2 = 6;
    threshold_bump = 4;
    trace_duration = Sim_time.zero (* atomic local traces *);
  }

let oid = Alcotest.testable Oid.pp Oid.equal
let verdict = Alcotest.testable Verdict.pp Verdict.equal

let find_outref eng r ~at =
  Tables.find_outref (Engine.site eng at).Site.tables r

let find_inref eng r =
  Tables.find_inref (Engine.site eng (Oid.site r)).Site.tables r

(* --- Figure 1: local tracing collects d,e; back tracing collects the
   f-g cycle ----------------------------------------------------------- *)

let test_fig1_local_collects_acyclic () =
  let f = Scenario.fig1 ~cfg:cfg_fast () in
  let eng = f.f1_sim.Sim.eng in
  Scenario.settle f.f1_sim ~rounds:3;
  let heap_p = (Engine.site eng f.f1_p).Site.heap in
  let heap_q = (Engine.site eng f.f1_q).Site.heap in
  Alcotest.(check bool) "d collected" false (Heap.mem heap_q f.f1_d);
  Alcotest.(check bool) "e collected" false (Heap.mem heap_p f.f1_e);
  (* The live part stays. *)
  Alcotest.(check bool) "a alive" true (Heap.mem heap_p f.f1_a);
  Alcotest.(check bool) "b alive" true (Heap.mem heap_q f.f1_b);
  (* The inter-site cycle survives local tracing alone. *)
  Alcotest.(check bool) "f survives local tracing" true
    (Heap.mem heap_q f.f1_f);
  Alcotest.(check bool) "g survives local tracing" true
    (Heap.mem (Engine.site eng f.f1_r).Site.heap f.f1_g)

let test_fig1_back_tracing_collects_cycle () =
  let f = Scenario.fig1 ~cfg:cfg_fast () in
  let sim = f.f1_sim in
  let eng = sim.Sim.eng in
  Sim.start sim;
  let ok = Sim.collect_all sim ~max_rounds:30 () in
  Alcotest.(check bool) "all garbage collected" true ok;
  (* Exactly the garbage died. *)
  let heap_q = (Engine.site eng f.f1_q).Site.heap in
  let heap_r = (Engine.site eng f.f1_r).Site.heap in
  Alcotest.(check bool) "f collected" false (Heap.mem heap_q f.f1_f);
  Alcotest.(check bool) "g collected" false (Heap.mem heap_r f.f1_g);
  Alcotest.(check bool) "c alive" true (Heap.mem heap_r f.f1_c);
  (* Locality: the trace only involved Q and R (the cycle's sites). *)
  let stats = Back_trace.stats (Collector.back sim.Sim.col) in
  let garbage_traces =
    List.filter
      (fun (_, s) ->
        match s.Back_trace.ts_outcome with
        | Some (Verdict.Garbage, _) -> true
        | _ -> false)
      stats
  in
  Alcotest.(check bool) "at least one garbage trace" true
    (garbage_traces <> []);
  List.iter
    (fun (_, s) ->
      Site_id.Set.iter
        (fun p ->
          Alcotest.(check bool)
            (Format.asprintf "participant %a on cycle" Site_id.pp p)
            true
            (Site_id.equal p f.f1_q || Site_id.equal p f.f1_r))
        s.Back_trace.ts_participants)
    garbage_traces

(* --- Figure 2: traces must start from outrefs ------------------------- *)

let suspect_all_inrefs eng =
  (* Force everything into the suspected regime: raise recorded source
     distances above delta and re-run local traces so outsets exist. *)
  Array.iter
    (fun s ->
      Tables.iter_inrefs s.Site.tables (fun ir ->
          List.iter
            (fun src ->
              Ioref.set_source_dist ir src.Ioref.src_site ~dist:100)
            ir.Ioref.ir_sources))
    (Engine.sites eng)

let test_fig2_insets () =
  let f = Scenario.fig2 ~cfg:cfg_fast () in
  let sim = f.f2_sim in
  let eng = sim.Sim.eng in
  suspect_all_inrefs eng;
  Collector.force_local_trace_all sim.Sim.col;
  (* inset of outref c at Q = {a, b} *)
  match find_outref eng f.f2_c ~at:(Oid.site f.f2_a) with
  | None -> Alcotest.fail "outref c missing at Q"
  | Some o ->
      Alcotest.(check (list oid))
        "inset of outref c"
        (List.sort Oid.compare [ f.f2_a; f.f2_b ])
        (List.sort Oid.compare o.Ioref.or_inset)

let test_fig2_trace_from_outref_confirms_garbage () =
  let f = Scenario.fig2 ~cfg:cfg_fast () in
  let sim = f.f2_sim in
  let eng = sim.Sim.eng in
  suspect_all_inrefs eng;
  Collector.force_local_trace_all sim.Sim.col;
  let outcome = ref None in
  Back_trace.on_outcome (Collector.back sim.Sim.col) (fun _ v _ ->
      outcome := Some v);
  (* Start from outref c at Q: finds all paths to everything. *)
  let t =
    Collector.start_back_trace sim.Sim.col (Oid.site f.f2_a) f.f2_c
  in
  Alcotest.(check bool) "trace started" true (t <> None);
  Sim.run_for sim (Sim_time.of_seconds 5.);
  (match !outcome with
  | Some v -> Alcotest.check verdict "outcome" Verdict.Garbage v
  | None -> Alcotest.fail "trace did not complete");
  (* All four inrefs are now flagged. *)
  List.iter
    (fun r ->
      match find_inref eng r with
      | Some ir ->
          Alcotest.(check bool)
            (Format.asprintf "inref %a flagged" Oid.pp r)
            true ir.Ioref.ir_flagged
      | None -> Alcotest.fail "inref missing")
    [ f.f2_a; f.f2_b; f.f2_c; f.f2_d ]

(* --- Figure 3: branching, one branch garbage, trace returns Live ------ *)

let test_fig3_branching_live () =
  let f = Scenario.fig3 ~cfg:cfg_fast () in
  let sim = f.f3_sim in
  let eng = sim.Sim.eng in
  Scenario.settle sim ~rounds:4;
  (* Everything is live here; distances converge to small values, so
     nothing is suspected. Force suspicion to exercise the branch. *)
  suspect_all_inrefs eng;
  (* ... except the root-side inref a stays clean. *)
  (match find_inref eng f.f3_a with
  | Some ir ->
      List.iter
        (fun src -> Ioref.set_source_dist ir src.Ioref.src_site ~dist:1)
        ir.Ioref.ir_sources
  | None -> Alcotest.fail "inref a missing");
  Collector.force_local_trace_all sim.Sim.col;
  let outcome = ref None in
  Back_trace.on_outcome (Collector.back sim.Sim.col) (fun _ v _ ->
      outcome := Some v);
  let t =
    Collector.start_back_trace sim.Sim.col (Oid.site f.f3_c) f.f3_d
  in
  Alcotest.(check bool) "trace started" true (t <> None);
  Sim.run_for sim (Sim_time.of_seconds 5.);
  (match !outcome with
  | Some v -> Alcotest.check verdict "outcome" Verdict.Live v
  | None -> Alcotest.fail "trace did not complete");
  (* Live outcome: no inref flagged anywhere. *)
  Array.iter
    (fun s ->
      Tables.iter_inrefs s.Site.tables (fun ir ->
          Alcotest.(check bool) "no flag" false ir.Ioref.ir_flagged))
    (Engine.sites eng)

(* --- trigger policy (§4.3) --------------------------------------------- *)

let test_threshold_bump_silences_live_suspects () =
  (* A live structure far from the root stays suspected forever; back
     traces fire, return Live, bump the thresholds, and stop. *)
  let cfg = { cfg_fast with Config.n_sites = 6; threshold2 = 4 } in
  let sim = Sim.make ~cfg () in
  let eng = sim.Sim.eng in
  ignore
    (Graph_gen.chain eng
       ~sites:(List.init 6 Site_id.of_int)
       ~per_site:1 ~rooted:true);
  Sim.start sim;
  Sim.run_rounds sim 10;
  let after_warmup = Metrics.get (Engine.metrics eng) "back.traces_started" in
  Alcotest.(check bool) "some abortive traces fired" true (after_warmup > 0);
  Alcotest.(check int) "all returned Live" after_warmup
    (Metrics.get (Engine.metrics eng) "back.outcome_live");
  (* Distances are fixed now; thresholds have been bumped above them:
     another stretch starts (almost) nothing new. *)
  Sim.run_rounds sim 20;
  let later = Metrics.get (Engine.metrics eng) "back.traces_started" in
  Alcotest.(check bool)
    (Format.asprintf "trace rate collapses (%d then %d)" after_warmup later)
    true
    (later - after_warmup <= after_warmup)

let test_max_trace_starts_cap () =
  let cfg = { cfg_fast with Config.n_sites = 2; max_trace_starts = 1 } in
  let sim = Sim.make ~cfg () in
  let eng = sim.Sim.eng in
  (* Several independent 2-site cycles: each site accumulates multiple
     eligible outrefs, but may only start one trace per round. *)
  for _ = 1 to 4 do
    ignore
      (Graph_gen.ring eng
         ~sites:[ Site_id.of_int 0; Site_id.of_int 1 ]
         ~per_site:1 ~rooted:false)
  done;
  Scenario.settle sim ~rounds:8;
  let started = Collector.trigger_back_traces sim.Sim.col (Site_id.of_int 0) in
  Alcotest.(check int) "only one trace started" 1 (List.length started)

let test_adaptive_threshold_raises () =
  (* A system full of live suspects: with [adaptive_threshold] the
     collector notices the abortive verdicts and raises its effective
     Δ2, so newly suspected outrefs start with a higher bar. *)
  let cfg =
    {
      cfg_fast with
      Config.n_sites = 6;
      threshold2 = 4;
      adaptive_threshold = true;
    }
  in
  let sim = Sim.make ~cfg () in
  let eng = sim.Sim.eng in
  (* Six live chains in rotated site orders: each ends in a deep live
     suspect, so the first round of traces yields a burst of abortive
     Live verdicts. *)
  for rot = 0 to 5 do
    ignore
      (Graph_gen.chain eng
         ~sites:(List.init 6 (fun i -> Site_id.of_int ((i + rot) mod 6)))
         ~per_site:1 ~rooted:true)
  done;
  Alcotest.(check int) "starts at the configured value" 4
    (Collector.effective_threshold2 sim.Sim.col);
  Sim.start sim;
  Sim.run_rounds sim 25;
  Alcotest.(check bool) "abortive traces happened" true
    (Metrics.get (Engine.metrics eng) "back.outcome_live" > 0);
  Alcotest.(check bool) "threshold raised" true
    (Collector.effective_threshold2 sim.Sim.col > 4);
  Alcotest.(check bool) "raises counted" true
    (Metrics.get (Engine.metrics eng) "adaptive.threshold_raised" > 0)

let test_adaptive_does_not_raise_on_garbage () =
  (* Garbage-dominated outcomes must not inflate the threshold. *)
  let cfg =
    { cfg_fast with Config.n_sites = 2; adaptive_threshold = true }
  in
  let sim = Sim.make ~cfg () in
  let eng = sim.Sim.eng in
  for _ = 1 to 4 do
    ignore
      (Graph_gen.ring eng
         ~sites:[ Site_id.of_int 0; Site_id.of_int 1 ]
         ~per_site:1 ~rooted:false)
  done;
  Sim.start sim;
  ignore (Sim.collect_all sim ~max_rounds:40 ());
  Alcotest.(check bool) "several garbage verdicts" true
    (Metrics.get (Engine.metrics eng) "back.outcome_garbage" >= 4);
  Alcotest.(check int) "threshold unchanged" cfg.Config.threshold2
    (Collector.effective_threshold2 sim.Sim.col)

(* --- robustness --------------------------------------------------------- *)

let test_call_on_missing_ioref_returns_garbage () =
  let f = Scenario.fig2 ~cfg:cfg_fast () in
  let sim = f.f2_sim in
  let eng = sim.Sim.eng in
  suspect_all_inrefs eng;
  Collector.force_local_trace_all sim.Sim.col;
  (* Delete outref c's inset target behind the scenes: the local step
     from c reaches a missing inref and treats it as deleted garbage. *)
  Tables.remove_inref (Engine.site eng (Oid.site f.f2_a)).Site.tables f.f2_a;
  Tables.remove_inref (Engine.site eng (Oid.site f.f2_b)).Site.tables f.f2_b;
  let outcome = ref None in
  Back_trace.on_outcome (Collector.back sim.Sim.col) (fun _ v _ ->
      outcome := Some v);
  ignore (Collector.start_back_trace sim.Sim.col (Oid.site f.f2_a) f.f2_c);
  Sim.run_for sim (Sim_time.of_seconds 5.);
  match !outcome with
  | Some v -> Alcotest.check verdict "missing iorefs read as garbage"
                Verdict.Garbage v
  | None -> Alcotest.fail "trace did not complete"

let test_flagged_inref_reads_as_garbage () =
  let f = Scenario.fig2 ~cfg:cfg_fast () in
  let sim = f.f2_sim in
  let eng = sim.Sim.eng in
  suspect_all_inrefs eng;
  Collector.force_local_trace_all sim.Sim.col;
  (* Pre-flag a (as an earlier trace's report would have). *)
  (match find_inref eng f.f2_a with
  | Some ir -> ir.Ioref.ir_flagged <- true
  | None -> Alcotest.fail "inref a missing");
  let outcome = ref None in
  Back_trace.on_outcome (Collector.back sim.Sim.col) (fun _ v _ ->
      outcome := Some v);
  ignore (Collector.start_back_trace sim.Sim.col (Oid.site f.f2_a) f.f2_c);
  Sim.run_for sim (Sim_time.of_seconds 5.);
  match !outcome with
  | Some v ->
      Alcotest.check verdict "flagged branch contributes garbage"
        Verdict.Garbage v
  | None -> Alcotest.fail "trace did not complete"

let test_visited_ttl_cleanup_allows_retry () =
  (* Drop every collector message after the trace starts: the report
     never arrives, participants clear their marks via the TTL, and a
     later trace completes the collection. *)
  let cfg =
    {
      cfg_fast with
      Config.n_sites = 2;
      latency = Latency.Fixed (Sim_time.of_millis 10.);
      back_call_timeout = Sim_time.of_seconds 3.;
      visited_ttl = Sim_time.of_seconds 6.;
    }
  in
  let sim = Sim.make ~cfg () in
  let eng = sim.Sim.eng in
  ignore
    (Graph_gen.ring eng
       ~sites:[ Site_id.of_int 0; Site_id.of_int 1 ]
       ~per_site:1 ~rooted:false);
  Scenario.settle sim ~rounds:8;
  let trace_started = ref false in
  Array.iter
    (fun st ->
      Tables.iter_outrefs st.Site.tables (fun o ->
          if (not !trace_started) && not (Ioref.outref_clean o) then
            trace_started :=
              Collector.start_back_trace sim.Sim.col st.Site.id
                o.Ioref.or_target
              <> None))
    (Engine.sites eng);
  Alcotest.(check bool) "trace started" true !trace_started;
  (* Cut the network at +35ms: the participant has marked its iorefs
     visited (call delivered at +10ms) but the final reply (+40ms) and
     the report are lost. The initiator times out to Live; the
     participant's marks must expire via the TTL. *)
  Engine.schedule eng ~delay:(Sim_time.of_millis 35.) (fun () ->
      Engine.partition eng [ [ Site_id.of_int 0 ]; [ Site_id.of_int 1 ] ]);
  Sim.run_for sim (Sim_time.of_seconds 30.);
  Alcotest.(check bool) "TTL fired" true
    (Metrics.get (Engine.metrics eng) "back.visited_ttl_expired" > 0);
  (* no stale visited marks remain *)
  Array.iter
    (fun st ->
      Tables.iter_inrefs st.Site.tables (fun ir ->
          Alcotest.(check bool) "inref marks cleared" true
            (Trace_id.Set.is_empty ir.Ioref.ir_visited));
      Tables.iter_outrefs st.Site.tables (fun o ->
          Alcotest.(check bool) "outref marks cleared" true
            (Trace_id.Set.is_empty o.Ioref.or_visited)))
    (Engine.sites eng);
  Engine.heal eng;
  Sim.start sim;
  let ok = Sim.collect_all ~max_rounds:40 sim () in
  Alcotest.(check bool) "retry collects after heal" true ok

let test_trace_stats_accounting () =
  let f = Scenario.fig1 ~cfg:cfg_fast () in
  let sim = f.f1_sim in
  Sim.start sim;
  ignore (Sim.collect_all sim ~max_rounds:30 ());
  let stats = Back_trace.stats (Collector.back sim.Sim.col) in
  Alcotest.(check bool) "stats recorded" true (stats <> []);
  List.iter
    (fun (id, st) ->
      Alcotest.(check bool) "initiator matches id" true
        (Site_id.equal id.Trace_id.initiator st.Back_trace.ts_initiator);
      match st.Back_trace.ts_outcome with
      | Some (_, at) ->
          Alcotest.(check bool) "finished after it started" true
            (Sim_time.compare st.Back_trace.ts_started at <= 0);
          Alcotest.(check bool) "messages counted" true
            (st.Back_trace.ts_msgs >= 2 * st.Back_trace.ts_calls);
          Alcotest.(check bool) "participants non-empty" true
            (not (Site_id.Set.is_empty st.Back_trace.ts_participants))
      | None -> ())
    stats;
  (* find_stat agrees with stats *)
  match stats with
  | (id, st) :: _ ->
      Alcotest.(check bool) "find_stat" true
        (Back_trace.find_stat (Collector.back sim.Sim.col) id = Some st)
  | [] -> ()

let () =
  Alcotest.run "back_trace"
    [
      ( "fig1",
        [
          Alcotest.test_case "local tracing collects acyclic garbage" `Quick
            test_fig1_local_collects_acyclic;
          Alcotest.test_case "back tracing collects the f-g cycle" `Quick
            test_fig1_back_tracing_collects_cycle;
        ] );
      ( "fig2",
        [
          Alcotest.test_case "insets match the figure" `Quick test_fig2_insets;
          Alcotest.test_case "outref-start confirms garbage" `Quick
            test_fig2_trace_from_outref_confirms_garbage;
        ] );
      ( "fig3",
        [
          Alcotest.test_case "branching trace returns Live" `Quick
            test_fig3_branching_live;
        ] );
      ( "trigger",
        [
          Alcotest.test_case "threshold bump silences live suspects" `Quick
            test_threshold_bump_silences_live_suspects;
          Alcotest.test_case "max_trace_starts cap" `Quick
            test_max_trace_starts_cap;
          Alcotest.test_case "adaptive threshold raises on live suspects"
            `Quick test_adaptive_threshold_raises;
          Alcotest.test_case "adaptive threshold stays put on garbage" `Quick
            test_adaptive_does_not_raise_on_garbage;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "missing iorefs read as garbage" `Quick
            test_call_on_missing_ioref_returns_garbage;
          Alcotest.test_case "flagged inrefs read as garbage" `Quick
            test_flagged_inref_reads_as_garbage;
          Alcotest.test_case "visited TTL cleanup and retry" `Quick
            test_visited_ttl_cleanup_allows_retry;
          Alcotest.test_case "trace statistics accounting" `Quick
            test_trace_stats_accounting;
        ] );
    ]
