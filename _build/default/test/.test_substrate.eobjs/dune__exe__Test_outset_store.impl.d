test/test_outset_store.ml: Alcotest Dgc_core Dgc_heap Dgc_prelude List Oid Outset_store QCheck2 QCheck_alcotest Site_id
