test/test_heap.ml: Alcotest Array Dgc_heap Dgc_prelude Hashtbl Heap Int List Oid Printf QCheck2 QCheck_alcotest Reach Scc Site_id Snapshot
