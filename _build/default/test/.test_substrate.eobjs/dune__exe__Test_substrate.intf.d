test/test_substrate.mli:
