test/test_local_trace.mli:
