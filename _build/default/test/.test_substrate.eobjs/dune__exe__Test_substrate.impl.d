test/test_substrate.ml: Alcotest Array Dgc_prelude Dgc_simcore Event_queue Float Format Fun Int Journal Latency List Metrics QCheck2 QCheck_alcotest Rng Sim_time Site_id Trace_id Util
