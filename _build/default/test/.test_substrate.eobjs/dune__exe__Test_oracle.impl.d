test/test_oracle.ml: Alcotest Builder Config Dgc_heap Dgc_oracle Dgc_prelude Dgc_rts Dgc_simcore Engine Ioref Latency List Mutator Oid Option Sim_time Site Site_id String Tables
