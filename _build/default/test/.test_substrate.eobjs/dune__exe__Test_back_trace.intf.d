test/test_back_trace.mli:
