test/test_rts.mli:
