test/test_outset_store.mli:
