(* Heap substrate: oids, object store, snapshots, local reachability,
   Tarjan SCC vs a brute-force oracle. *)

open Dgc_prelude
open Dgc_heap

let s0 = Site_id.of_int 0
let s1 = Site_id.of_int 1
let oid = Alcotest.testable Oid.pp Oid.equal

(* --- oids --------------------------------------------------------------- *)

let test_oid_basics () =
  let a = Oid.make ~site:s0 ~index:4 in
  let b = Oid.make ~site:s0 ~index:4 in
  let c = Oid.make ~site:s1 ~index:4 in
  let d = Oid.make ~site:s0 ~index:5 in
  Alcotest.(check bool) "equal" true (Oid.equal a b);
  Alcotest.(check bool) "site differs" false (Oid.equal a c);
  Alcotest.(check bool) "index differs" false (Oid.equal a d);
  Alcotest.(check int) "hash consistent" (Oid.hash a) (Oid.hash b);
  Alcotest.(check bool) "compare site first" true (Oid.compare a c < 0);
  Alcotest.(check string) "to_string" "S0/o4" (Oid.to_string a)

let prop_oid_compare_equal_agree =
  QCheck2.Test.make ~name:"oid compare 0 iff equal" ~count:200
    ~print:QCheck2.Print.(pair (pair int int) (pair int int))
    QCheck2.Gen.(pair (pair (int_bound 5) (int_bound 5)) (pair (int_bound 5) (int_bound 5)))
    (fun ((sa, ia), (sb, ib)) ->
      let a = Oid.make ~site:(Site_id.of_int sa) ~index:ia in
      let b = Oid.make ~site:(Site_id.of_int sb) ~index:ib in
      Oid.compare a b = 0 = Oid.equal a b)

(* --- heap --------------------------------------------------------------- *)

let test_heap_alloc_and_fields () =
  let h = Heap.create s0 in
  let a = Heap.alloc h in
  let b = Heap.alloc h in
  Alcotest.(check bool) "mem a" true (Heap.mem h a);
  Alcotest.(check bool) "foreign oid not mem" false
    (Heap.mem h (Oid.make ~site:s1 ~index:0));
  Heap.add_field h ~obj:a ~target:b;
  Heap.add_field h ~obj:a ~target:b;
  Alcotest.(check int) "duplicate fields kept" 2
    (List.length (Heap.fields h a));
  Alcotest.(check bool) "remove one" true (Heap.remove_field h ~obj:a ~target:b);
  Alcotest.(check int) "one left" 1 (List.length (Heap.fields h a));
  Alcotest.(check bool) "remove second" true
    (Heap.remove_field h ~obj:a ~target:b);
  Alcotest.(check bool) "nothing left to remove" false
    (Heap.remove_field h ~obj:a ~target:b);
  Heap.add_field h ~obj:a ~target:b;
  Heap.clear_fields h a;
  Alcotest.(check (list oid)) "cleared" [] (Heap.fields h a)

let test_heap_free_and_roots () =
  let h = Heap.create s0 in
  let a = Heap.alloc h in
  let b = Heap.alloc h in
  Heap.add_persistent_root h a;
  Heap.add_persistent_root h a;
  Alcotest.(check int) "root added once" 1
    (List.length (Heap.persistent_roots h));
  let freed = Heap.free h [ Oid.index a; Oid.index b; 999 ] in
  Alcotest.(check int) "only b freed (root kept, 999 ignored)" 1 freed;
  Alcotest.(check bool) "a alive" true (Heap.mem h a);
  Alcotest.(check bool) "b gone" false (Heap.mem h b);
  Alcotest.check_raises "root must be local+alive"
    (Invalid_argument "Heap.add_persistent_root: not a live local object")
    (fun () -> Heap.add_persistent_root h b)

let test_heap_indices_and_counts () =
  let h = Heap.create s0 in
  let objs = List.init 5 (fun _ -> Heap.alloc h) in
  Alcotest.(check int) "count" 5 (Heap.object_count h);
  Alcotest.(check (list int)) "indices ascending" [ 0; 1; 2; 3; 4 ]
    (Heap.indices h);
  ignore (Heap.free h [ 2 ]);
  Alcotest.(check (list int)) "after free" [ 0; 1; 3; 4 ] (Heap.indices h);
  Alcotest.(check int) "alloc clock unaffected by free" 5 (Heap.alloc_clock h);
  ignore objs

(* --- snapshot ------------------------------------------------------------ *)

let test_snapshot_immutable () =
  let h = Heap.create s0 in
  let a = Heap.alloc h in
  let b = Heap.alloc h in
  Heap.add_field h ~obj:a ~target:b;
  let snap = Snapshot.take h in
  (* mutate after the snapshot *)
  ignore (Heap.remove_field h ~obj:a ~target:b);
  let c = Heap.alloc h in
  Alcotest.(check (list oid)) "snapshot keeps old edge" [ b ]
    (Snapshot.fields snap a);
  Alcotest.(check bool) "snapshot lacks new object" false (Snapshot.mem snap c);
  Alcotest.(check int) "clock from capture time" 2 (Snapshot.alloc_clock snap);
  Alcotest.(check int) "object count" 2 (Snapshot.object_count snap)

(* --- reachability --------------------------------------------------------- *)

let test_reach_closure () =
  let h = Heap.create s0 in
  let a = Heap.alloc h and b = Heap.alloc h and c = Heap.alloc h in
  let r = Oid.make ~site:s1 ~index:7 in
  Heap.add_field h ~obj:a ~target:b;
  Heap.add_field h ~obj:b ~target:r;
  Heap.add_field h ~obj:c ~target:a;
  (* c unreachable from a *)
  let locals, remotes = Reach.closure (Reach.of_heap h) ~from:[ a ] in
  Alcotest.(check bool) "a in" true (Oid.Set.mem a locals);
  Alcotest.(check bool) "b in" true (Oid.Set.mem b locals);
  Alcotest.(check bool) "c out" false (Oid.Set.mem c locals);
  Alcotest.(check bool) "remote collected" true (Oid.Set.mem r remotes);
  (* starting at a remote ref *)
  let locals2, remotes2 = Reach.closure (Reach.of_heap h) ~from:[ r ] in
  Alcotest.(check int) "no locals from remote" 0 (Oid.Set.cardinal locals2);
  Alcotest.(check bool) "remote itself" true (Oid.Set.mem r remotes2)

let test_reach_cycle_terminates () =
  let h = Heap.create s0 in
  let a = Heap.alloc h and b = Heap.alloc h in
  Heap.add_field h ~obj:a ~target:b;
  Heap.add_field h ~obj:b ~target:a;
  let locals, _ = Reach.closure (Reach.of_heap h) ~from:[ a ] in
  Alcotest.(check int) "cycle closed" 2 (Oid.Set.cardinal locals);
  Alcotest.(check bool) "reaches itself" true
    (Reach.reaches (Reach.of_heap h) ~src:a ~dst:a)

(* --- SCC ------------------------------------------------------------------ *)

let brute_scc ~n ~succ =
  (* reach.(i).(j) via DFS *)
  let reach = Array.make_matrix n n false in
  for i = 0 to n - 1 do
    let rec go j =
      List.iter
        (fun k ->
          if k >= 0 && k < n && not reach.(i).(k) then begin
            reach.(i).(k) <- true;
            go k
          end)
        (succ j)
    in
    go i
  done;
  (* same component iff mutually reachable (or equal) *)
  fun a b -> a = b || (reach.(a).(b) && reach.(b).(a))

let check_scc_against_brute ~n ~succ =
  let res = Scc.tarjan ~n ~succ in
  let same = brute_scc ~n ~succ in
  for a = 0 to n - 1 do
    for b = 0 to n - 1 do
      let got = res.Scc.component.(a) = res.Scc.component.(b) in
      if got <> same a b then
        Alcotest.failf "scc mismatch for %d,%d (got %b want %b)" a b got
          (same a b)
    done
  done

let test_scc_basic () =
  (* 0 -> 1 -> 2 -> 0 (one SCC), 3 -> 0 (alone), 4 self-loop *)
  let succ = function
    | 0 -> [ 1 ]
    | 1 -> [ 2 ]
    | 2 -> [ 0 ]
    | 3 -> [ 0 ]
    | 4 -> [ 4 ]
    | _ -> []
  in
  check_scc_against_brute ~n:5 ~succ;
  let res = Scc.tarjan ~n:5 ~succ in
  Alcotest.(check int) "three components" 3 res.Scc.count

let test_scc_chain () =
  let succ i = if i < 9 then [ i + 1 ] else [] in
  let res = Scc.tarjan ~n:10 ~succ in
  Alcotest.(check int) "all singletons" 10 res.Scc.count

let test_scc_deep_no_stack_overflow () =
  (* A 200k-node chain would blow a naive recursion. *)
  let n = 200_000 in
  let succ i = if i < n - 1 then [ i + 1 ] else [ 0 ] in
  let res = Scc.tarjan ~n ~succ in
  Alcotest.(check int) "single giant cycle" 1 res.Scc.count

let prop_scc_matches_brute =
  QCheck2.Test.make ~name:"tarjan matches brute force" ~count:200
    ~print:QCheck2.Print.(pair int (list (pair int int)))
    QCheck2.Gen.(
      pair (int_range 1 10) (list_size (int_bound 25) (pair (int_bound 9) (int_bound 9))))
    (fun (n, edges) ->
      let succ i =
        List.filter_map
          (fun (a, b) -> if a mod n = i && b < n then Some b else None)
          edges
      in
      check_scc_against_brute ~n ~succ;
      true)

let test_condensation_is_acyclic () =
  let succ = function
    | 0 -> [ 1; 3 ]
    | 1 -> [ 2 ]
    | 2 -> [ 0; 4 ]
    | 3 -> [ 4 ]
    | 4 -> [ 5 ]
    | 5 -> [ 4 ]
    | _ -> []
  in
  let res, dag = Scc.condensation ~n:6 ~succ in
  Alcotest.(check int) "components" 3 res.Scc.count;
  (* check no cycles in the condensed graph *)
  let n = res.Scc.count in
  let visited = Array.make n 0 in
  let rec acyclic c =
    if visited.(c) = 1 then false
    else if visited.(c) = 2 then true
    else begin
      visited.(c) <- 1;
      let ok = List.for_all acyclic dag.(c) in
      visited.(c) <- 2;
      ok
    end
  in
  Alcotest.(check bool) "condensation acyclic" true
    (List.for_all acyclic (List.init n (fun i -> i)))

(* Local reachability against a brute-force BFS over the same heap. *)
let prop_closure_matches_bfs =
  QCheck2.Test.make ~name:"Reach.closure matches brute-force BFS" ~count:200
    ~print:QCheck2.Print.(pair int (list (pair int int)))
    QCheck2.Gen.(
      pair (int_range 1 15)
        (list_size (int_bound 40) (pair (int_bound 14) (int_bound 16))))
    (fun (n, edges) ->
      let h = Heap.create s0 in
      let objs = Array.init n (fun _ -> Heap.alloc h) in
      let remote j = Oid.make ~site:s1 ~index:j in
      (* targets >= n become remote references *)
      List.iter
        (fun (a, b) ->
          let src = objs.(a mod n) in
          let dst = if b < n then objs.(b) else remote b in
          Heap.add_field h ~obj:src ~target:dst)
        edges;
      let start = objs.(0) in
      let locals, remotes = Reach.closure (Reach.of_heap h) ~from:[ start ] in
      (* brute force *)
      let seen = Array.make n false in
      let rem = ref Oid.Set.empty in
      let rec bfs i =
        if not seen.(i) then begin
          seen.(i) <- true;
          List.iter
            (fun z ->
              if Site_id.equal (Oid.site z) s0 then bfs (Oid.index z)
              else rem := Oid.Set.add z !rem)
            (Heap.fields h objs.(i))
        end
      in
      bfs 0;
      let want_locals =
        Array.to_list objs |> List.filteri (fun i _ -> seen.(i))
      in
      Oid.Set.equal locals (Oid.Set.of_list want_locals)
      && Oid.Set.equal remotes !rem)

(* --- model-based heap property -------------------------------------------- *)

(* Random operation sequences against a pure reference model: an
   association list of index -> field list, plus a root set. *)
type model_op =
  | M_alloc
  | M_add of int * int  (* obj choice, target choice *)
  | M_remove of int * int
  | M_clear of int
  | M_free of int
  | M_root of int

let model_op_gen =
  QCheck2.Gen.(
    frequency
      [
        (3, return M_alloc);
        (4, map2 (fun a b -> M_add (a, b)) (int_bound 30) (int_bound 30));
        (2, map2 (fun a b -> M_remove (a, b)) (int_bound 30) (int_bound 30));
        (1, map (fun a -> M_clear a) (int_bound 30));
        (2, map (fun a -> M_free a) (int_bound 30));
        (1, map (fun a -> M_root a) (int_bound 30));
      ])

let print_op = function
  | M_alloc -> "alloc"
  | M_add (a, b) -> Printf.sprintf "add(%d,%d)" a b
  | M_remove (a, b) -> Printf.sprintf "remove(%d,%d)" a b
  | M_clear a -> Printf.sprintf "clear(%d)" a
  | M_free a -> Printf.sprintf "free(%d)" a
  | M_root a -> Printf.sprintf "root(%d)" a

let prop_heap_matches_model =
  QCheck2.Test.make ~name:"heap matches a pure model" ~count:300
    ~print:QCheck2.Print.(list print_op)
    QCheck2.Gen.(list_size (int_bound 60) model_op_gen)
    (fun ops ->
      let h = Heap.create s0 in
      let model : (int, int list ref) Hashtbl.t = Hashtbl.create 16 in
      let roots = ref [] in
      let next = ref 0 in
      let existing choice =
        let live = Hashtbl.fold (fun k _ acc -> k :: acc) model [] in
        match List.sort Int.compare live with
        | [] -> None
        | l -> Some (List.nth l (choice mod List.length l))
      in
      let oid i = Oid.make ~site:s0 ~index:i in
      List.iter
        (fun op ->
          match op with
          | M_alloc ->
              let r = Heap.alloc h in
              assert (Oid.index r = !next);
              Hashtbl.add model !next (ref []);
              incr next
          | M_add (a, b) -> begin
              match (existing a, existing b) with
              | Some x, Some y ->
                  Heap.add_field h ~obj:(oid x) ~target:(oid y);
                  let fl = Hashtbl.find model x in
                  fl := y :: !fl
              | _ -> ()
            end
          | M_remove (a, b) -> begin
              match (existing a, existing b) with
              | Some x, Some y ->
                  let got = Heap.remove_field h ~obj:(oid x) ~target:(oid y) in
                  let fl = Hashtbl.find model x in
                  let removed = ref false in
                  fl :=
                    List.filter
                      (fun z ->
                        if (not !removed) && z = y then begin
                          removed := true;
                          false
                        end
                        else true)
                      !fl;
                  if got <> !removed then failwith "remove disagreement"
              | _ -> ()
            end
          | M_clear a -> begin
              match existing a with
              | Some x ->
                  Heap.clear_fields h (oid x);
                  Hashtbl.find model x := []
              | None -> ()
            end
          | M_free a -> begin
              match existing a with
              | Some x ->
                  let n = Heap.free h [ x ] in
                  if List.mem x !roots then assert (n = 0)
                  else begin
                    assert (n = 1);
                    Hashtbl.remove model x
                  end
              | None -> ()
            end
          | M_root a -> begin
              match existing a with
              | Some x ->
                  Heap.add_persistent_root h (oid x);
                  if not (List.mem x !roots) then roots := x :: !roots
              | None -> ()
            end)
        ops;
      (* Final state comparison. *)
      let model_indices =
        Hashtbl.fold (fun k _ acc -> k :: acc) model [] |> List.sort Int.compare
      in
      if Heap.indices h <> model_indices then failwith "index sets differ";
      Hashtbl.iter
        (fun x fl ->
          let got =
            List.map Oid.index (Heap.fields h (oid x)) |> List.sort Int.compare
          in
          let want = List.sort Int.compare !fl in
          if got <> want then failwith "fields differ")
        model;
      List.length (Heap.persistent_roots h) = List.length !roots)

let () =
  Alcotest.run "heap"
    [
      ( "oid",
        [
          Alcotest.test_case "basics" `Quick test_oid_basics;
          QCheck_alcotest.to_alcotest prop_oid_compare_equal_agree;
        ] );
      ( "heap",
        [
          Alcotest.test_case "alloc and fields" `Quick
            test_heap_alloc_and_fields;
          Alcotest.test_case "free and roots" `Quick test_heap_free_and_roots;
          Alcotest.test_case "indices and counts" `Quick
            test_heap_indices_and_counts;
        ] );
      ( "snapshot",
        [ Alcotest.test_case "immutability" `Quick test_snapshot_immutable ] );
      ("model", [ QCheck_alcotest.to_alcotest prop_heap_matches_model ]);
      ( "reach",
        [
          Alcotest.test_case "closure" `Quick test_reach_closure;
          Alcotest.test_case "cycles terminate" `Quick
            test_reach_cycle_terminates;
          QCheck_alcotest.to_alcotest prop_closure_matches_bfs;
        ] );
      ( "scc",
        [
          Alcotest.test_case "basic shapes" `Quick test_scc_basic;
          Alcotest.test_case "chain" `Quick test_scc_chain;
          Alcotest.test_case "200k nodes, constant stack" `Slow
            test_scc_deep_no_stack_overflow;
          QCheck_alcotest.to_alcotest prop_scc_matches_brute;
          Alcotest.test_case "condensation acyclic" `Quick
            test_condensation_is_acyclic;
        ] );
    ]
