(* The verification oracle itself: global reachability including
   agent variables and in-flight messages, the safety check, and
   table-integrity detection. *)

open Dgc_prelude
open Dgc_simcore
open Dgc_heap
open Dgc_rts

let s k = Site_id.of_int k

let cfg n =
  {
    Config.default with
    Config.n_sites = n;
    latency = Latency.Fixed (Sim_time.of_millis 10.);
  }

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_live_set_basics () =
  let eng = Engine.create (cfg 2) in
  let root = Builder.root_obj eng (s 0) in
  let a = Builder.obj eng (s 0) in
  let b = Builder.obj eng (s 1) in
  let orphan = Builder.obj eng (s 1) in
  Builder.link eng ~src:root ~dst:a;
  Builder.link eng ~src:a ~dst:b;
  let live = Dgc_oracle.Oracle.live_set eng in
  Alcotest.(check bool) "root live" true (Oid.Set.mem root live);
  Alcotest.(check bool) "a live" true (Oid.Set.mem a live);
  Alcotest.(check bool) "b live cross-site" true (Oid.Set.mem b live);
  Alcotest.(check bool) "orphan dead" false (Oid.Set.mem orphan live);
  Alcotest.(check int) "garbage count" 1 (Dgc_oracle.Oracle.garbage_count eng);
  Alcotest.(check (list int)) "garbage site" [ 1 ]
    (List.map Site_id.to_int
       (Site_id.Set.elements (Dgc_oracle.Oracle.cyclic_garbage_sites eng)))

let test_agent_vars_are_roots () =
  let eng = Engine.create (cfg 1) in
  let muts = Mutator.manager eng in
  let a = Mutator.spawn muts ~at:(s 0) in
  ignore (Mutator.new_obj a ~dst:"v");
  let o = Option.get (Mutator.var a "v") in
  Alcotest.(check bool) "var-held object is live" true
    (Oid.Set.mem o (Dgc_oracle.Oracle.live_set eng));
  ignore (Mutator.drop a "v");
  Alcotest.(check bool) "dropped object is garbage" false
    (Oid.Set.mem o (Dgc_oracle.Oracle.live_set eng))

let test_in_flight_refs_are_roots () =
  let eng = Engine.create (cfg 2) in
  let muts = Mutator.manager eng in
  let root = Builder.root_obj eng (s 0) in
  let x = Builder.obj eng (s 0) in
  Builder.link eng ~src:root ~dst:x;
  let beacon = Builder.root_obj eng (s 1) in
  Builder.link eng ~src:root ~dst:beacon;
  let a = Mutator.spawn muts ~at:(s 0) in
  ignore (Mutator.load_root a ~dst:"r");
  ignore (Mutator.read_field a ~obj:"r" ~idx:1 ~dst:"x");
  ignore (Mutator.read_field a ~obj:"r" ~idx:0 ~dst:"b");
  (* Sever the heap path; only the variables hold x now. Then travel:
     during the flight the refs live in the Move message. *)
  Builder.unlink eng ~src:root ~dst:x;
  ignore (Mutator.travel a ~via:"b" ~k:(fun () -> ()));
  Alcotest.(check bool) "traveling" true (Mutator.traveling a);
  Alcotest.(check bool) "x kept live by the in-flight move" true
    (Oid.Set.mem x (Dgc_oracle.Oracle.live_set eng));
  Engine.run_for eng (Sim_time.of_seconds 2.);
  Alcotest.(check bool) "x kept live by the arrived variable" true
    (Oid.Set.mem x (Dgc_oracle.Oracle.live_set eng))

let test_check_would_free_raises () =
  let eng = Engine.create (cfg 1) in
  let root = Builder.root_obj eng (s 0) in
  let a = Builder.obj eng (s 0) in
  Builder.link eng ~src:root ~dst:a;
  let dead = Builder.obj eng (s 0) in
  (* Freeing the dead object is fine... *)
  Dgc_oracle.Oracle.check_would_free eng (s 0) [ Oid.index dead ];
  (* ...freeing the live one raises. *)
  Alcotest.(check bool) "live free detected" true
    (try
       Dgc_oracle.Oracle.check_would_free eng (s 0) [ Oid.index a ];
       false
     with Dgc_oracle.Oracle.Safety_violation _ -> true)

let test_assert_no_garbage () =
  let eng = Engine.create (cfg 1) in
  let _root = Builder.root_obj eng (s 0) in
  Dgc_oracle.Oracle.assert_no_garbage eng;
  let _orphan = Builder.obj eng (s 0) in
  Alcotest.(check bool) "garbage detected" true
    (try
       Dgc_oracle.Oracle.assert_no_garbage eng;
       false
     with Dgc_oracle.Oracle.Safety_violation _ -> true)

let test_table_violations_detect_corruption () =
  let eng = Engine.create (cfg 2) in
  let a = Builder.obj eng (s 0) in
  let b = Builder.obj eng (s 1) in
  Builder.link eng ~src:a ~dst:b;
  Alcotest.(check int) "consistent after builder" 0
    (List.length (Dgc_oracle.Oracle.table_violations eng));
  (* Corrupt: remove the outref behind the heap's back. *)
  Tables.remove_outref (Engine.site eng (s 0)).Site.tables b;
  let violations = Dgc_oracle.Oracle.table_violations eng in
  Alcotest.(check bool) "missing outref detected" true
    (List.exists
       (fun v -> contains v "lacks an outref" || contains v "no outref")
       violations)

let test_table_violations_detect_missing_source () =
  let eng = Engine.create (cfg 2) in
  let a = Builder.obj eng (s 0) in
  let b = Builder.obj eng (s 1) in
  Builder.link eng ~src:a ~dst:b;
  (match Tables.find_inref (Engine.site eng (s 1)).Site.tables b with
  | Some ir -> Ioref.remove_source ir (s 0)
  | None -> Alcotest.fail "inref missing");
  Alcotest.(check bool) "missing source detected" true
    (Dgc_oracle.Oracle.table_violations eng <> [])

let () =
  Alcotest.run "oracle"
    [
      ( "reachability",
        [
          Alcotest.test_case "basics" `Quick test_live_set_basics;
          Alcotest.test_case "agent variables" `Quick test_agent_vars_are_roots;
          Alcotest.test_case "in-flight references" `Quick
            test_in_flight_refs_are_roots;
        ] );
      ( "checks",
        [
          Alcotest.test_case "check_would_free" `Quick
            test_check_would_free_raises;
          Alcotest.test_case "assert_no_garbage" `Quick test_assert_no_garbage;
          Alcotest.test_case "detect missing outref" `Quick
            test_table_violations_detect_corruption;
          Alcotest.test_case "detect missing source" `Quick
            test_table_violations_detect_missing_source;
        ] );
    ]
