(* Baseline collectors (§7): global tracing, Hughes timestamps, group
   tracing and migration — each collects inter-site cycles, and each
   exhibits the weakness the paper attributes to it. *)

open Dgc_prelude
open Dgc_simcore
open Dgc_rts
open Dgc_core
open Dgc_workload
open Dgc_baselines

let s k = Site_id.of_int k

let cfg n =
  {
    Config.default with
    Config.n_sites = n;
    delta = 3;
    threshold2 = 6;
    trace_interval = Sim_time.of_seconds 10.;
    trace_jitter = Sim_time.of_seconds 1.;
    trace_duration = Sim_time.zero;
    latency = Latency.Uniform (Sim_time.of_millis 1., Sim_time.of_millis 10.);
    oracle_checks = true;
  }

let run eng secs = Engine.run_for eng (Sim_time.of_seconds secs)

let ring_garbage eng ~span ~per_site =
  let sites = List.init span s in
  Graph_gen.ring eng ~sites ~per_site ~rooted:false

let live_ring eng ~span ~per_site =
  let sites = List.init span s in
  Graph_gen.ring eng ~sites ~per_site ~rooted:true

(* --- global trace -------------------------------------------------------- *)

let test_global_collects_cycle () =
  let eng = Engine.create (cfg 3) in
  let gt = Global_trace.install eng in
  ignore (ring_garbage eng ~span:3 ~per_site:2);
  ignore (live_ring eng ~span:3 ~per_site:2);
  let done_ = ref None in
  Global_trace.collect gt
    ~on_done:(fun ~freed ~rounds -> done_ := Some (freed, rounds))
    ();
  run eng 60.;
  (match !done_ with
  | Some (freed, rounds) ->
      Alcotest.(check int) "freed exactly the cycle" 6 freed;
      Alcotest.(check bool) "took a few rounds" true (rounds >= 2)
  | None -> Alcotest.fail "global collection did not finish");
  Alcotest.(check int) "no garbage left" 0 (Dgc_oracle.Oracle.garbage_count eng)

let test_global_stalls_on_crash () =
  let eng = Engine.create (cfg 3) in
  let gt = Global_trace.install eng in
  (* The cycle spans sites 0 and 1 only; site 2 is crashed and holds
     none of it — yet the global trace cannot finish. *)
  ignore
    (Graph_gen.ring eng ~sites:[ s 0; s 1 ] ~per_site:1 ~rooted:false);
  Engine.crash eng (s 2);
  let done_ = ref false in
  Global_trace.collect gt ~on_done:(fun ~freed:_ ~rounds:_ -> done_ := true) ();
  run eng 300.;
  Alcotest.(check bool) "stalled" false !done_;
  Alcotest.(check bool) "still running" true (Global_trace.running gt);
  Alcotest.(check bool) "garbage uncollected" true
    (Dgc_oracle.Oracle.garbage_count eng > 0)

(* --- Hughes --------------------------------------------------------------- *)

let test_hughes_collects_cycle () =
  let eng = Engine.create (cfg 3) in
  let h = Hughes.install eng ~slack:(Sim_time.of_seconds 60.) in
  ignore (ring_garbage eng ~span:3 ~per_site:2);
  ignore (live_ring eng ~span:3 ~per_site:2);
  Engine.start_gc_schedule eng;
  (* Trace for a while, run threshold rounds periodically. *)
  for _ = 1 to 30 do
    run eng 15.;
    Hughes.run_threshold_round h ()
  done;
  run eng 60.;
  Alcotest.(check bool) "threshold advanced" true (Hughes.threshold h > 0.);
  Alcotest.(check int) "cycle collected, live ring intact" 0
    (Dgc_oracle.Oracle.garbage_count eng);
  let live_objects =
    Array.fold_left
      (fun acc st -> acc + Dgc_heap.Heap.object_count st.Site.heap)
      0 (Engine.sites eng)
  in
  Alcotest.(check int) "live ring plus its root survive" 7 live_objects

let test_hughes_crashed_site_holds_threshold () =
  let eng = Engine.create (cfg 3) in
  let h = Hughes.install eng ~slack:(Sim_time.of_seconds 60.) in
  ignore (Graph_gen.ring eng ~sites:[ s 0; s 1 ] ~per_site:1 ~rooted:false);
  (* Site 2 never traces: it crashes immediately. Its last-trace time
     stays 0, pinning the threshold at -slack. *)
  Engine.crash eng (s 2);
  Engine.start_gc_schedule eng;
  for _ = 1 to 20 do
    run eng 15.;
    Hughes.run_threshold_round h ()
  done;
  Alcotest.(check (float 1e-9)) "threshold held down" 0. (Hughes.threshold h);
  Alcotest.(check bool) "cycle uncollected" true
    (Dgc_oracle.Oracle.garbage_count eng > 0);
  (* Note the contrast with back tracing: the crashed site holds no
     part of the cycle, yet blocks its collection system-wide. *)
  Engine.recover eng (s 2);
  for _ = 1 to 20 do
    run eng 15.;
    Hughes.run_threshold_round h ()
  done;
  Alcotest.(check int) "collected after recovery" 0
    (Dgc_oracle.Oracle.garbage_count eng)

(* --- group tracing ---------------------------------------------------------- *)

let test_group_collects_cycle () =
  let eng = Engine.create (cfg 4) in
  let g = Group_trace.install eng ~max_group:8 in
  ignore (ring_garbage eng ~span:3 ~per_site:2);
  ignore (live_ring eng ~span:3 ~per_site:1);
  Engine.start_gc_schedule eng;
  run eng 600.;
  Alcotest.(check bool) "a group formed" true (Group_trace.groups_formed g >= 1);
  Alcotest.(check int) "cycle collected" 0
    (Dgc_oracle.Oracle.garbage_count eng);
  Alcotest.(check bool) "group spans at least the cycle" true
    (Group_trace.last_group_size g >= 3)

let test_group_cap_prevents_collection () =
  let eng = Engine.create (cfg 5) in
  let g = Group_trace.install eng ~max_group:2 in
  (* The cycle spans 5 sites; groups are capped at 2 members. *)
  ignore (ring_garbage eng ~span:5 ~per_site:1);
  Engine.start_gc_schedule eng;
  run eng 600.;
  Alcotest.(check bool) "cycle survives capped groups" true
    (Dgc_oracle.Oracle.garbage_count eng > 0);
  ignore g

let test_group_simultaneous_initiation_aborts () =
  (* Two cycles share site 1: sites 0 and 2 initiate at the same
     instant, and both probe the shared site. The busy refusal aborts
     one formation — the paper's simultaneity criticism — and the
     released sites let a retry collect everything. *)
  let c = { (cfg 3) with Config.trace_jitter = Sim_time.zero } in
  let eng = Engine.create c in
  let g = Group_trace.install eng ~max_group:8 in
  ignore (Graph_gen.ring eng ~sites:[ s 0; s 1 ] ~per_site:1 ~rooted:false);
  ignore (Graph_gen.ring eng ~sites:[ s 1; s 2 ] ~per_site:1 ~rooted:false);
  (* Converge distances so both sides have eligible seeds, without the
     automatic initiator racing ahead. *)
  let col = Group_trace.collector g in
  Dgc_core.Collector.set_after_trace col (fun _ -> ());
  for _ = 1 to 9 do
    Dgc_core.Collector.force_local_trace_all col;
    run eng 1.
  done;
  Group_trace.try_initiate g (s 0);
  Group_trace.try_initiate g (s 2);
  run eng 60.;
  Alcotest.(check bool) "one formation aborted on the busy site" true
    (Group_trace.groups_aborted g >= 1);
  (* Retries (the periodic schedule) eventually collect both cycles. *)
  Dgc_core.Collector.set_after_trace col (fun site ->
      Group_trace.try_initiate g site);
  Engine.start_gc_schedule eng;
  run eng 900.;
  Alcotest.(check int) "both cycles collected by retries" 0
    (Dgc_oracle.Oracle.garbage_count eng)

(* --- migration --------------------------------------------------------------- *)

let test_migration_collects_ring () =
  let eng = Engine.create (cfg 3) in
  let m = Migration.install eng in
  ignore (ring_garbage eng ~span:3 ~per_site:2);
  ignore (live_ring eng ~span:3 ~per_site:2);
  Engine.start_gc_schedule eng;
  run eng 1200.;
  Alcotest.(check int) "ring collected by convergence" 0
    (Dgc_oracle.Oracle.garbage_count eng);
  Alcotest.(check bool) "objects actually moved" true (Migration.migrations m > 0);
  Alcotest.(check bool) "bytes were paid" true (Migration.bytes_moved m > 0)

let test_migration_skips_multi_holder () =
  let eng = Engine.create (cfg 3) in
  let m = Migration.install eng in
  (* A clique: every object held from two sites — single-holder
     migration cannot converge it. *)
  ignore (Graph_gen.clique eng ~sites:[ s 0; s 1; s 2 ] ~rooted:false);
  Engine.start_gc_schedule eng;
  run eng 600.;
  Alcotest.(check bool) "multi-holder suspects skipped" true
    (Migration.skipped_multi_holder m > 0);
  Alcotest.(check bool) "clique uncollected by this baseline" true
    (Dgc_oracle.Oracle.garbage_count eng > 0)

(* The same clique IS collected by back tracing — the core scheme
   handles what the restricted migration baseline cannot. *)
let test_back_tracing_handles_clique () =
  let sim = Sim.make ~cfg:(cfg 3) () in
  let eng = sim.Sim.eng in
  ignore (Graph_gen.clique eng ~sites:[ s 0; s 1; s 2 ] ~rooted:false);
  Sim.start sim;
  let ok = Sim.collect_all sim ~max_rounds:60 () in
  Alcotest.(check bool) "clique collected by back tracing" true ok

let () =
  Alcotest.run "baselines"
    [
      ( "global",
        [
          Alcotest.test_case "collects cycles" `Quick test_global_collects_cycle;
          Alcotest.test_case "stalls on any crash" `Quick
            test_global_stalls_on_crash;
        ] );
      ( "hughes",
        [
          Alcotest.test_case "collects cycles" `Quick test_hughes_collects_cycle;
          Alcotest.test_case "one site holds the threshold" `Quick
            test_hughes_crashed_site_holds_threshold;
        ] );
      ( "group",
        [
          Alcotest.test_case "collects cycles" `Quick test_group_collects_cycle;
          Alcotest.test_case "capped groups never collect" `Quick
            test_group_cap_prevents_collection;
          Alcotest.test_case "simultaneous initiation aborts" `Quick
            test_group_simultaneous_initiation_aborts;
        ] );
      ( "migration",
        [
          Alcotest.test_case "converges rings" `Quick
            test_migration_collects_ring;
          Alcotest.test_case "skips multi-holder suspects" `Quick
            test_migration_skips_multi_holder;
          Alcotest.test_case "back tracing handles the clique" `Quick
            test_back_tracing_handles_clique;
        ] );
    ]
