(* The dgc-check analysis layer: conformance automata, the schedule
   explorer, schedule shrinking, and the seeded-bug regression — a
   broken transfer barrier must be caught and the violating schedule
   shrunk to a small reproducer. *)

open Dgc_prelude
open Dgc_simcore
open Dgc_heap
open Dgc_rts
open Dgc_analysis

let s = Site_id.of_int
let oid site index = Oid.make ~site:(s site) ~index

(* --- conformance automata --------------------------------------------- *)

let deliver mon ~src ~dst payload =
  Conformance.hook mon ~phase:`Deliver ~src:(s src) ~dst:(s dst) payload

let rules vs = List.map (fun v -> v.Conformance.c_rule) vs

let test_conformance_clean_pair () =
  let mon = Conformance.create () in
  deliver mon ~src:0 ~dst:1 (Protocol.Move { agent = 1; refs = []; token = 7 });
  deliver mon ~src:1 ~dst:0 (Protocol.Move_ack { token = 7 });
  Alcotest.(check (list string)) "clean" [] (rules (Conformance.finish mon))

let test_conformance_ack_without_move () =
  let mon = Conformance.create () in
  deliver mon ~src:1 ~dst:0 (Protocol.Move_ack { token = 3 });
  Alcotest.(check (list string))
    "orphan ack flagged" [ "ack-after-move" ]
    (rules (Conformance.finish mon))

let test_conformance_unacked_move () =
  let mon = Conformance.create () in
  deliver mon ~src:0 ~dst:1 (Protocol.Move { agent = 1; refs = []; token = 9 });
  Alcotest.(check (list string))
    "unacked move flagged" [ "move-completes" ]
    (rules (Conformance.finish mon))

let test_conformance_misrouted_ack () =
  let mon = Conformance.create () in
  deliver mon ~src:0 ~dst:1 (Protocol.Move { agent = 1; refs = []; token = 4 });
  (* the ack must travel dst -> src of the move; 2 -> 1 does not *)
  deliver mon ~src:2 ~dst:1 (Protocol.Move_ack { token = 4 });
  Alcotest.(check (list string))
    "misrouted ack flagged" [ "ack-routing" ]
    (rules (Conformance.finish mon))

let test_conformance_insert_at_non_owner () =
  let mon = Conformance.create () in
  let r = oid 2 0 in
  (* r lives at site 2; delivering its insert at site 1 is a protocol bug *)
  deliver mon ~src:0 ~dst:1 (Protocol.Insert { r; by = s 0 });
  Alcotest.(check (list string))
    "insert at non-owner flagged"
    [ "insert-at-owner"; "insert-completes" ]
    (rules (Conformance.finish mon))

let test_conformance_insert_pairing () =
  let mon = Conformance.create () in
  let r = oid 2 0 in
  deliver mon ~src:0 ~dst:2 (Protocol.Insert { r; by = s 0 });
  deliver mon ~src:2 ~dst:0 (Protocol.Insert_done { r });
  (* a second done for the same (ref, holder) has nothing to answer *)
  deliver mon ~src:2 ~dst:0 (Protocol.Insert_done { r });
  Alcotest.(check (list string))
    "unpaired insert_done flagged" [ "insert-pairing" ]
    (rules (Conformance.finish mon))

let test_conformance_battery () =
  let report = Conformance.run_battery () in
  Alcotest.(check (list string))
    "battery conformant" []
    (List.map Conformance.violation_to_string report.Conformance.r_violations);
  Alcotest.(check (list string))
    "all payload kinds covered" [] report.Conformance.r_uncovered

(* --- the deviation primitive ------------------------------------------ *)

let test_pop_nth () =
  let q = Event_queue.create () in
  let at ms = Sim_time.of_millis ms in
  List.iter (fun (t, v) -> Event_queue.push q ~at:(at t) v)
    [ (10., "a"); (20., "b"); (30., "c"); (20., "b2") ];
  (* rank 2 of {a, b, b2, c} is b2 (equal times keep insertion order) *)
  (match Event_queue.pop_nth q 2 with
  | Some (_, v) -> Alcotest.(check string) "rank 2" "b2" v
  | None -> Alcotest.fail "pop_nth returned None");
  (* the skipped events keep their order *)
  let drained = ref [] in
  let rec drain () =
    match Event_queue.pop q with
    | Some (_, v) ->
        drained := v :: !drained;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list string))
    "remaining order preserved" [ "a"; "b"; "c" ] (List.rev !drained);
  Alcotest.(check (option reject)) "empty" None (Event_queue.pop_nth q 0)

(* --- shrinking --------------------------------------------------------- *)

let test_shrink_synthetic () =
  (* violation iff the schedule still delays step 3 (any rank) *)
  let reproduces sched = List.mem_assoc 3 sched in
  let shrunk, _runs =
    Shrink.minimize ~reproduces [ (1, 2); (3, 2); (5, 1); (9, 2) ]
  in
  Alcotest.(check (list (pair int int)))
    "shrunk to the one load-bearing deviation, rank lowered" [ (3, 1) ] shrunk

let test_shrink_keeps_reproducer () =
  (* violation needs both deviations *)
  let reproduces sched = List.mem (2, 2) sched && List.mem_assoc 6 sched in
  let shrunk, _ =
    Shrink.minimize ~reproduces [ (0, 1); (2, 2); (4, 1); (6, 2); (8, 1) ]
  in
  Alcotest.(check bool) "still reproduces" true (reproduces shrunk);
  Alcotest.(check int) "minimal" 2 (List.length shrunk)

(* --- exploration ------------------------------------------------------- *)

let small_bounds =
  { Explorer.depth_bound = 2; width = 3; max_steps = 200; max_schedules = 40 }

let test_explore_fig1_clean () =
  let r = Explorer.explore ~bounds:small_bounds Sut.fig1 in
  Alcotest.(check bool) "fig1 explores clean" true (Explorer.clean r);
  Alcotest.(check int) "budget spent" small_bounds.Explorer.max_schedules
    r.Explorer.res_schedules

let test_explore_race_stock_clean () =
  let r = Explorer.explore ~bounds:small_bounds Sut.fig5_race in
  Alcotest.(check bool)
    "§6.4 race with barriers on survives exploration" true (Explorer.clean r)

(* The seeded-bug regression: with the transfer barrier disabled the
   explorer must find a §6.1 violation and shrink the schedule to a
   small reproducer that still reproduces on replay. *)
let test_explore_race_broken_detected () =
  let r = Explorer.explore ~bounds:small_bounds Sut.fig5_race_broken in
  match r.Explorer.res_counterexample with
  | None -> Alcotest.fail "seeded transfer-barrier bug not detected"
  | Some cx ->
      Alcotest.(check bool)
        "violation messages present" true
        (cx.Explorer.cx_messages <> []);
      Alcotest.(check bool)
        "shrunk schedule is a small reproducer" true
        (List.length cx.Explorer.cx_shrunk <= 10);
      let replay =
        Explorer.run_schedule Sut.fig5_race_broken
          ~max_steps:small_bounds.Explorer.max_steps cx.Explorer.cx_shrunk
      in
      Alcotest.(check bool)
        "shrunk schedule reproduces on replay" true
        (replay.Explorer.run_violation <> None)

(* --- continuous checking (Check_step) ---------------------------------- *)

let test_check_step_clean_run () =
  (* sanitizer mode: the per-step battery runs after every engine event
     and must stay silent on a stock Figure-1 collection *)
  let cfg =
    {
      Config.default with
      Config.n_sites = 3;
      trace_interval = Sim_time.of_seconds 5.;
      trace_jitter = Sim_time.zero;
      trace_duration = Sim_time.zero;
      check_level = Config.Check_step;
    }
  in
  let f = Dgc_workload.Scenario.fig1 ~cfg () in
  let sim = f.Dgc_workload.Scenario.f1_sim in
  Dgc_core.Sim.start sim;
  Dgc_core.Sim.run_for sim (Sim_time.of_seconds 60.);
  Alcotest.(check (list string))
    "final check also clean" []
    (Dgc_core.Invariants.strings (Dgc_core.Sim.check ~settled:true sim))

let () =
  Alcotest.run "analysis"
    [
      ( "conformance",
        [
          Alcotest.test_case "clean move/ack pair" `Quick
            test_conformance_clean_pair;
          Alcotest.test_case "ack without move" `Quick
            test_conformance_ack_without_move;
          Alcotest.test_case "unacked move" `Quick test_conformance_unacked_move;
          Alcotest.test_case "misrouted ack" `Quick
            test_conformance_misrouted_ack;
          Alcotest.test_case "insert at non-owner" `Quick
            test_conformance_insert_at_non_owner;
          Alcotest.test_case "insert/done pairing" `Quick
            test_conformance_insert_pairing;
          Alcotest.test_case "battery conformant and covering" `Quick
            test_conformance_battery;
        ] );
      ( "explorer",
        [
          Alcotest.test_case "pop_nth deviation primitive" `Quick test_pop_nth;
          Alcotest.test_case "fig1 explores clean" `Quick
            test_explore_fig1_clean;
          Alcotest.test_case "stock race explores clean" `Quick
            test_explore_race_stock_clean;
          Alcotest.test_case "seeded broken barrier detected and shrunk" `Quick
            test_explore_race_broken_detected;
        ] );
      ( "shrink",
        [
          Alcotest.test_case "drops and lowers deviations" `Quick
            test_shrink_synthetic;
          Alcotest.test_case "keeps multi-deviation reproducers" `Quick
            test_shrink_keeps_reproducer;
        ] );
      ( "check-step",
        [
          Alcotest.test_case "sanitizer mode clean on fig1" `Quick
            test_check_step_clean_run;
        ] );
    ]
