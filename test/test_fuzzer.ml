(* The lib/fuzz suite: coverage-bitmap unit tests, the qcheck mutator
   properties (every mutation of a valid input stays valid and
   round-trips through the corpus codec), and the determinism pin —
   two in-process campaigns with the same seed and seed corpus must
   produce byte-identical dgc.fuzz/1 artifacts. *)

open Dgc_prelude
module Coverage = Dgc_fuzz.Coverage
module Input = Dgc_fuzz.Input
module Mutate = Dgc_fuzz.Mutate
module Pool = Dgc_fuzz.Pool
module Report = Dgc_fuzz.Report
module Fuzzer = Dgc_fuzz.Fuzzer
module Json = Dgc_telemetry.Json
module Plan = Dgc_chaos.Plan

(* --- coverage bitmap ---------------------------------------------------- *)

let keys = [ "p|mark|3|0"; "j|trace|1|2"; "v|plan|leak"; "p|mark|3|4" ]

let test_record_counts () =
  let c = Coverage.create ~size:1024 ~seed:7 () in
  List.iter (Coverage.record c) keys;
  Alcotest.(check int) "total counts every record" 4 (Coverage.total c);
  let h = Coverage.hits c in
  Alcotest.(check bool) "some slots set" true (h > 0 && h <= 4);
  Coverage.record c (List.hd keys);
  Alcotest.(check int) "re-hit bumps total" 5 (Coverage.total c);
  Alcotest.(check int) "re-hit sets no new slot" h (Coverage.hits c)

let test_seeded_hash_determinism () =
  let a = Coverage.create ~size:1024 ~seed:7 () in
  let b = Coverage.create ~size:1024 ~seed:7 () in
  List.iter (Coverage.record a) keys;
  List.iter (Coverage.record b) (List.rev keys);
  Alcotest.(check (list int))
    "same seed, any order: same hit set" (Coverage.bits a) (Coverage.bits b);
  Alcotest.(check int)
    "same signature"
    (Coverage.signature (Coverage.bits a))
    (Coverage.signature (Coverage.bits b));
  let c = Coverage.create ~size:1024 ~seed:8 () in
  List.iter (Coverage.record c) keys;
  Alcotest.(check bool)
    "different seed: different slots" true
    (Coverage.bits a <> Coverage.bits c)

(* Amplifying a known edge must still read as a new behaviour: the
   count-bucket projection gives the pool a gradient past the first
   hit (1 hit and 4 hits of the same key land in different buckets). *)
let test_count_buckets () =
  let once = Coverage.create ~size:1024 ~seed:7 () in
  Coverage.record once "p|mark|3|0";
  let many = Coverage.create ~size:1024 ~seed:7 () in
  for _ = 1 to 4 do
    Coverage.record many "p|mark|3|0"
  done;
  Alcotest.(check int) "still one slot" (Coverage.hits once) (Coverage.hits many);
  Alcotest.(check bool)
    "bucketed projection differs" true
    (Coverage.bits once <> Coverage.bits many)

let test_absorb_novelty_and_rarity () =
  let local = Coverage.create ~size:1024 ~seed:7 () in
  List.iter (Coverage.record local) keys;
  let bits = Coverage.bits local in
  let global = Coverage.create ~size:1024 ~seed:7 () in
  Alcotest.(check int)
    "first absorb: everything novel" (List.length bits)
    (Coverage.absorb global bits);
  Alcotest.(check int) "second absorb: nothing novel" 0
    (Coverage.absorb global bits);
  let r1 = Coverage.rarity global bits in
  ignore (Coverage.absorb global bits);
  let r2 = Coverage.rarity global bits in
  Alcotest.(check bool) "re-treading cools the weight" true (r2 < r1);
  Alcotest.(check (float 0.)) "empty set has no weight" 0.
    (Coverage.rarity global [])

let test_signature_shape () =
  let s = Coverage.signature [ 3; 17; 99 ] in
  Alcotest.(check bool) "non-negative" true (s >= 0);
  Alcotest.(check bool)
    "distinguishes sets" true
    (s <> Coverage.signature [ 3; 17 ]
    && Coverage.signature [] <> Coverage.signature [ 3 ])

(* --- pool --------------------------------------------------------------- *)

let test_pool_select () =
  let global = Coverage.create ~size:1024 ~seed:7 () in
  let pool = Pool.create () in
  Alcotest.(check bool)
    "empty pool selects nothing" true
    (Pool.select pool ~rng:(Rng.create ~seed:1) ~global = None);
  let rng = Rng.create ~seed:3 in
  let plan =
    Mutate.random_plan ~rng ~workload:"churn" ~sites:4 ~horizon_ms:10_000.
      ~events:2
  in
  let sched = Mutate.random_schedule ~rng ~sut:"fig1" ~max_steps:64 ~width:3 in
  Pool.add pool plan [ 1; 2 ];
  Pool.add pool sched [ 9 ];
  ignore (Coverage.absorb global [ 1; 2 ]);
  ignore (Coverage.absorb global [ 9 ]);
  Alcotest.(check int) "size" 2 (Pool.size pool);
  Alcotest.(check int) "plans" 1 (Pool.plans pool);
  Alcotest.(check int) "schedules" 1 (Pool.schedules pool);
  let pick seed =
    match Pool.select pool ~rng:(Rng.create ~seed) ~global with
    | Some e -> Input.kind_name e.Pool.e_input
    | None -> Alcotest.fail "non-empty pool selected nothing"
  in
  Alcotest.(check string)
    "selection is a function of the rng stream" (pick 5) (pick 5)

(* --- qcheck mutator properties (satellite: mutation validity) ----------- *)

(* Drive a chain of mutations from a qcheck-drawn rng seed and check
   the invariant the fuzzer relies on: it never wastes an execution on
   an input the validator would reject, and whatever it promotes
   round-trips through the corpus codec unchanged. *)
let sites = 4
let horizon_ms = 20_000.
let max_steps = 64
let width = 3

let roundtrips input =
  let j = Json.to_string (Input.to_json input) in
  match Input.of_json (Result.get_ok (Json.parse j)) with
  | Error e -> QCheck.Test.fail_reportf "corpus codec reload failed: %s" e
  | Ok (input', _) ->
      let j' = Json.to_string (Input.to_json input') in
      String.equal j j'
      || QCheck.Test.fail_reportf "codec not a fixpoint:\n%s\n%s" j j'

let prop_plan_mutations_valid =
  QCheck.Test.make ~count:150 ~name:"mutated plans stay valid and round-trip"
    QCheck.(pair small_nat small_nat)
    (fun (seed, steps) ->
      let rng = Rng.create ~seed:(seed + 1) in
      let input =
        ref (Mutate.random_plan ~rng ~workload:"churn" ~sites ~horizon_ms
               ~events:3)
      in
      let mate =
        Mutate.random_plan ~rng ~workload:"churn" ~sites ~horizon_ms ~events:2
      in
      let ok = ref true in
      for _ = 0 to steps mod 8 do
        let _op, m =
          Mutate.mutate ~rng ~sites ~horizon_ms ~max_steps ~width ~mate !input
        in
        input := m;
        (match m with
        | Input.Plan_input p -> (
            match Plan.validate ~sites p.Input.pi_plan with
            | Ok () -> ()
            | Error e -> ok := QCheck.Test.fail_reportf "invalid plan: %s" e)
        | Input.Schedule_input _ ->
            ok := QCheck.Test.fail_reportf "plan mutated into a schedule");
        ok := !ok && roundtrips m
      done;
      !ok)

let prop_sched_mutations_valid =
  QCheck.Test.make ~count:150
    ~name:"mutated schedules stay in bounds and round-trip"
    QCheck.(pair small_nat small_nat)
    (fun (seed, steps) ->
      let rng = Rng.create ~seed:(seed + 1) in
      let input =
        ref (Mutate.random_schedule ~rng ~sut:"fig1" ~max_steps ~width)
      in
      let mate = Mutate.random_schedule ~rng ~sut:"fig1" ~max_steps ~width in
      let ok = ref true in
      for _ = 0 to steps mod 8 do
        let _op, m =
          Mutate.mutate ~rng ~sites ~horizon_ms ~max_steps ~width ~mate !input
        in
        input := m;
        (match m with
        | Input.Schedule_input s ->
            let devs = s.Input.si_schedule in
            if List.sort_uniq compare devs <> devs then
              ok := QCheck.Test.fail_reportf "schedule not sorted/unique";
            List.iter
              (fun (step, rank) ->
                if step < 0 || step >= max_steps || rank < 1 || rank > width
                then
                  ok :=
                    QCheck.Test.fail_reportf "deviation (%d,%d) out of bounds"
                      step rank)
              devs
        | Input.Plan_input _ ->
            ok := QCheck.Test.fail_reportf "schedule mutated into a plan");
        ok := !ok && roundtrips m
      done;
      !ok)

let test_save_load_meta () =
  let rng = Rng.create ~seed:9 in
  let input = Mutate.random_plan ~rng ~workload:"fig2" ~sites ~horizon_ms ~events:2 in
  let meta =
    {
      Input.m_expect = Some "leak";
      m_tweaks = [ "sanitize"; "no_timeouts" ];
      m_comment = Some "save/load fixture";
    }
  in
  let path = Filename.temp_file "dgc_fuzz_input" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Input.save ~path ~meta input;
      match Input.load ~path with
      | Error e -> Alcotest.failf "reload: %s" e
      | Ok (input', meta') ->
          Alcotest.(check string)
            "input round-trips"
            (Json.to_string (Input.to_json input))
            (Json.to_string (Input.to_json input'));
          Alcotest.(check (option string))
            "expect survives" meta.Input.m_expect meta'.Input.m_expect;
          Alcotest.(check (list string))
            "tweaks survive" meta.Input.m_tweaks meta'.Input.m_tweaks)

(* --- the determinism pin (satellite: coverage-curve stability) ----------- *)

(* Same seed + same seed corpus ⇒ byte-identical dgc.fuzz/1 document
   across two in-process campaigns — the artifact carries no wall-clock
   fields and every draw comes from the seeded stream. Mirrors the CI
   smoke targets at a smaller budget. *)
let det_opts () =
  let corpus =
    Sys.readdir "corpus" |> Array.to_list
    |> List.filter (fun f ->
           String.length f >= 5 && String.sub f 0 5 = "fuzz_")
    |> List.sort compare
    |> List.map (Filename.concat "corpus")
  in
  {
    Fuzzer.default_opts with
    Fuzzer.o_name = "det-pin";
    o_seed = 11;
    o_execs = 10;
    o_cov_size = 2048;
    o_workloads = [ "fig2" ];
    o_suts = [ "san-race-broken" ];
    o_tweaks = [ "sanitize"; "no_timeouts" ];
    o_shards = [ 1 ];
    o_horizon_ms = 15_000.;
    o_events = 2;
    o_max_steps = 64;
    o_corpus = corpus;
  }

let test_curve_determinism () =
  let opts = det_opts () in
  Alcotest.(check bool)
    "seed corpus found" true
    (List.length opts.Fuzzer.o_corpus >= 3);
  let a = Fuzzer.run opts in
  let b = Fuzzer.run opts in
  Alcotest.(check (list int))
    "identical coverage curves" a.Report.r_curve b.Report.r_curve;
  Alcotest.(check string)
    "byte-identical dgc.fuzz/1 artifacts"
    (Json.to_string (Report.to_json a))
    (Json.to_string (Report.to_json b));
  match Report.validate (Report.to_json a) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "report fails its own schema: %s" e

let () =
  Alcotest.run "fuzzer"
    [
      ( "coverage",
        [
          Alcotest.test_case "record/hits/total" `Quick test_record_counts;
          Alcotest.test_case "seeded hash determinism" `Quick
            test_seeded_hash_determinism;
          Alcotest.test_case "count-bucket gradient" `Quick test_count_buckets;
          Alcotest.test_case "absorb novelty and rarity" `Quick
            test_absorb_novelty_and_rarity;
          Alcotest.test_case "signature shape" `Quick test_signature_shape;
        ] );
      ("pool", [ Alcotest.test_case "rarity-weighted select" `Quick test_pool_select ]);
      ( "mutators",
        [
          QCheck_alcotest.to_alcotest prop_plan_mutations_valid;
          QCheck_alcotest.to_alcotest prop_sched_mutations_valid;
          Alcotest.test_case "save/load with meta" `Quick test_save_load_meta;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "coverage curve pinned to the seed" `Quick
            test_curve_determinism;
        ] );
    ]
