(* The deterministic sim-cost profiler and its per-trace cost ledger:
   scope-tree semantics and folded/speedscope exports, the fig2
   end-to-end artifact (schema-valid dgc.profile/1, ledger totals
   cross-checked against the collector's own trace stats), the two
   determinism contracts — same seed => byte-identical work sections,
   profiler off => event-identical schedule — the diff verdict, ledger
   arithmetic, and the run artifact's embedded profile section. *)

open Dgc_simcore
open Dgc_rts
open Dgc_core
open Dgc_workload
module Prof = Dgc_profile.Profile
module Ledg = Dgc_profile.Ledger
module Json = Dgc_telemetry.Json
module Run_artifact = Dgc_telemetry.Run_artifact

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let cfg_fig =
  {
    Config.default with
    Config.delta = 3;
    threshold2 = 6;
    threshold_bump = 4;
    trace_duration = Sim_time.zero;
  }

let run_fig2 ~profile () =
  let cfg = { cfg_fig with Config.profile } in
  let f = Scenario.fig2 ~cfg () in
  let sim = f.Scenario.f2_sim in
  Sim.start sim;
  Sim.run_rounds sim 8;
  sim

(* --- scopes and exports ------------------------------------------------ *)

let test_scopes_and_folded () =
  let p = Prof.create ~clock:(fun () -> 0.) () in
  Prof.with_scope p "deliver" (fun () ->
      Prof.work p "events" 1;
      Prof.with_scope p "update" (fun () -> Prof.work p "edges" 3));
  Prof.with_scope p "deliver" (fun () -> Prof.work p "events" 2);
  Alcotest.(check int) "depth back to zero" 0 (Prof.depth p);
  Alcotest.(check (list string))
    "units sorted" [ "edges"; "events" ] (Prof.units p);
  let folded = Prof.to_folded p in
  Alcotest.(check bool) "nested path weighted by self work" true
    (contains ~sub:"all;deliver;update 3" folded);
  Alcotest.(check bool) "repeat scopes merge into one node" true
    (contains ~sub:"all;deliver 3" folded);
  let only_edges = Prof.to_folded ~unit_:"edges" p in
  Alcotest.(check bool) "unit filter keeps the edge node" true
    (contains ~sub:"all;deliver;update 3" only_edges);
  Alcotest.(check bool) "unit filter drops event-only nodes" false
    (contains ~sub:"all;deliver 3" only_edges);
  match Prof.leave p with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "leave on an empty scope stack accepted"

let test_speedscope_shape () =
  let p = Prof.create ~clock:(fun () -> 0.) () in
  Prof.with_scope p "deliver" (fun () -> Prof.work p "events" 4);
  let doc = Prof.to_speedscope ~name:"unit" p in
  let member k = Json.member k doc in
  Alcotest.(check bool) "declares the speedscope schema" true
    (match Option.bind (member "$schema") Json.to_str_opt with
    | Some s -> contains ~sub:"speedscope" s
    | None -> false);
  Alcotest.(check bool) "has shared.frames" true
    (Option.bind (member "shared") (Json.member "frames") <> None);
  match Option.bind (member "profiles") Json.to_list_opt with
  | Some (_ :: _) -> ()
  | _ -> Alcotest.fail "profiles array missing or empty"

(* --- fig2 end to end --------------------------------------------------- *)

let test_fig2_artifact () =
  let sim = run_fig2 ~profile:true () in
  let p =
    match Engine.profile sim.Sim.eng with
    | Some p -> p
    | None -> Alcotest.fail "Sim.make did not attach a profiler"
  in
  let doc = Prof.to_json ~name:"fig2" p in
  (match Prof.validate doc with
  | Ok () -> ()
  | Error e -> Alcotest.failf "dgc.profile/1 invalid: %s" e);
  let folded = Prof.to_folded p in
  Alcotest.(check bool) "folded stacks non-empty" true (folded <> "\n");
  Alcotest.(check bool) "all root line present" true
    (String.starts_with ~prefix:"all " folded);
  Alcotest.(check bool) "deliver phase attributed" true
    (contains ~sub:"all;deliver" folded);
  (* The ledger's frame total must mirror the collector's own stats:
     both are bumped at the same §4.4 sites. *)
  let r = Ledg.rollup (Prof.ledger p) in
  let frames =
    List.fold_left
      (fun a (_, st) -> a + st.Back_trace.ts_frames)
      0
      (Back_trace.stats (Collector.back sim.Sim.col))
  in
  Alcotest.(check int) "ledger frames mirror trace stats" frames r.Ledg.r_frames;
  Alcotest.(check bool) "fig2 cycle collected" true (r.Ledg.r_collected >= 1);
  Alcotest.(check bool) "per-cycle message budget positive" true
    (r.Ledg.r_msgs_per_cycle_milli > 0);
  match Ledg.validate (Ledg.to_json (Prof.ledger p)) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "ledger section invalid: %s" e

(* --- determinism ------------------------------------------------------- *)

let test_same_seed_fingerprint () =
  let fp () =
    let sim = run_fig2 ~profile:true () in
    Prof.work_fingerprint (Option.get (Engine.profile sim.Sim.eng))
  in
  Alcotest.(check string) "byte-identical work sections" (fp ()) (fp ())

let test_profiler_schedule_neutral () =
  let run profile =
    let sim = run_fig2 ~profile () in
    let eng = sim.Sim.eng in
    ( Sim_time.to_seconds (Engine.now eng),
      List.sort compare (Metrics.counters (Engine.metrics eng)) )
  in
  let clock_on, counters_on = run true in
  let clock_off, counters_off = run false in
  Alcotest.(check (float 0.)) "same simulated clock" clock_on clock_off;
  Alcotest.(check (list (pair string int)))
    "event-identical counters" counters_on counters_off

(* --- diff -------------------------------------------------------------- *)

let mkprof phases =
  let p = Prof.create ~clock:(fun () -> 0.) () in
  List.iter
    (fun (phase, n) ->
      Prof.with_scope p phase (fun () -> Prof.work p "events" n))
    phases;
  Prof.to_json ~wall:false p

let test_diff_verdict () =
  let base = mkprof [ ("deliver", 90); ("local_trace", 10) ] in
  let same = mkprof [ ("deliver", 90); ("local_trace", 10) ] in
  let skew = mkprof [ ("deliver", 50); ("local_trace", 50) ] in
  (match Prof.diff base same with
  | Ok r ->
      Alcotest.(check bool) "identical: not regressed" false r.Prof.df_regressed;
      Alcotest.(check (float 0.)) "zero drift" 0. r.Prof.df_max_share_drift;
      Alcotest.(check int) "no deltas" 0 (List.length r.Prof.df_deltas)
  | Error e -> Alcotest.failf "self diff: %s" e);
  (match Prof.diff ~share_tolerance:0.10 base skew with
  | Ok r ->
      Alcotest.(check bool) "40-point share shift regresses" true
        r.Prof.df_regressed;
      Alcotest.(check bool) "deltas reported" true (r.Prof.df_deltas <> []);
      Alcotest.(check bool) "drift beyond tolerance" true
        (r.Prof.df_max_share_drift > 0.10);
      (* pp_diff must render without raising and carry the verdict *)
      let s = Format.asprintf "%a" Prof.pp_diff r in
      Alcotest.(check bool) "pp_diff carries the verdict" true
        (contains ~sub:"REGRESSION" s)
  | Error e -> Alcotest.failf "skew diff: %s" e);
  match Prof.diff base (Json.Int 3) with
  | Ok _ -> Alcotest.fail "diff accepted a non-profile document"
  | Error _ -> ()

(* --- ledger arithmetic ------------------------------------------------- *)

let test_ledger_arithmetic () =
  let l = Ledg.create () in
  Ledg.on_start l ~trace:"t1" ~root:"0.1" ~at:1.0;
  Ledg.on_msg l ~trace:"t1" ~kind:"back_call" ~bytes:32;
  Ledg.on_msg l ~trace:"t1" ~kind:"back_call" ~bytes:32;
  Ledg.on_msg l ~trace:"t1" ~kind:"back_reply" ~bytes:16;
  Ledg.on_frame l ~trace:"t1";
  Ledg.on_call l ~trace:"t1";
  Ledg.on_retry l ~trace:"t1";
  Ledg.on_memo_hit l ~trace:"t1";
  Ledg.on_timeout l ~trace:"t1";
  Ledg.on_report l ~trace:"t1";
  Ledg.on_conclude l ~trace:"t1" ~outcome:"garbage" ~at:2.5;
  (* duplicate reports re-conclude: first verdict wins *)
  Ledg.on_conclude l ~trace:"t1" ~outcome:"live" ~at:9.9;
  Ledg.on_start l ~trace:"t2" ~root:"0.2" ~at:1.5;
  Ledg.on_msg l ~trace:"t2" ~kind:"back_call" ~bytes:10;
  Ledg.on_conclude l ~trace:"t2" ~outcome:"live" ~at:2.0;
  let e =
    match Ledg.find l "t1" with
    | Some e -> e
    | None -> Alcotest.fail "t1 missing"
  in
  Alcotest.(check int) "message total" 3 (Ledg.msg_total e);
  Alcotest.(check int) "byte total" 80 (Ledg.byte_total e);
  Alcotest.(check (option string)) "first conclusion wins" (Some "garbage")
    e.Ledg.e_outcome;
  Alcotest.(check (option (float 1e-9))) "critical path in ms" (Some 1500.)
    (Ledg.critical_path_ms e);
  Alcotest.(check bool) "describe names the retry" true
    (contains ~sub:"retr" (Ledg.describe e));
  let r = Ledg.rollup l in
  Alcotest.(check int) "traces" 2 r.Ledg.r_traces;
  Alcotest.(check int) "collected" 1 r.Ledg.r_collected;
  Alcotest.(check int) "live" 1 r.Ledg.r_live;
  Alcotest.(check int) "msgs" 4 r.Ledg.r_msgs;
  Alcotest.(check int) "bytes" 90 r.Ledg.r_bytes;
  Alcotest.(check int) "msgs per collected cycle (milli)" 4000
    r.Ledg.r_msgs_per_cycle_milli;
  Alcotest.(check int) "bytes per collected cycle (milli)" 90_000
    r.Ledg.r_bytes_per_cycle_milli;
  (match Ledg.validate (Ledg.to_json l) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "ledger json: %s" e);
  (* entries are sorted by trace id — the deterministic export order *)
  Alcotest.(check (list string)) "entries sorted" [ "t1"; "t2" ]
    (List.map (fun e -> e.Ledg.e_trace) (Ledg.entries l))

(* --- run artifact embed ------------------------------------------------ *)

let test_artifact_profile_section () =
  let p = Prof.create ~clock:(fun () -> 0.) () in
  Prof.with_scope p "deliver" (fun () -> Prof.work p "events" 5);
  let m = Metrics.create () in
  Metrics.incr m "msg.total";
  let art =
    Run_artifact.make ~name:"unit" ~sim_seconds:1.
      ~profile:(Prof.to_json ~wall:false p)
      m
  in
  (match Run_artifact.validate art with
  | Ok () -> ()
  | Error e -> Alcotest.failf "artifact with profile: %s" e);
  (match Run_artifact.profile_section art with
  | Some sec -> (
      match Prof.validate sec with
      | Ok () -> ()
      | Error e -> Alcotest.failf "embedded profile: %s" e)
  | None -> Alcotest.fail "profile section missing");
  (* A profile section without the dgc.profile/1 tag must be rejected. *)
  let bad =
    Run_artifact.make ~name:"unit" ~sim_seconds:1.
      ~profile:(Json.Obj [ ("schema", Json.Str "bogus") ])
      m
  in
  match Run_artifact.validate bad with
  | Ok () -> Alcotest.fail "mistagged profile section accepted"
  | Error _ -> ()

let () =
  Alcotest.run "profile"
    [
      ( "scopes",
        [
          Alcotest.test_case "scope tree and folded export" `Quick
            test_scopes_and_folded;
          Alcotest.test_case "speedscope shape" `Quick test_speedscope_shape;
        ] );
      ( "fig2",
        [
          Alcotest.test_case "schema-valid artifact and ledger" `Quick
            test_fig2_artifact;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "same seed, same work fingerprint" `Quick
            test_same_seed_fingerprint;
          Alcotest.test_case "profiler is schedule-neutral" `Quick
            test_profiler_schedule_neutral;
        ] );
      ( "diff",
        [ Alcotest.test_case "share-drift verdict" `Quick test_diff_verdict ] );
      ( "ledger",
        [
          Alcotest.test_case "arithmetic and rollup" `Quick
            test_ledger_arithmetic;
        ] );
      ( "artifact",
        [
          Alcotest.test_case "embedded profile section" `Quick
            test_artifact_profile_section;
        ] );
    ]
