(* Golden outcomes for the local trace.

   [Local_trace.compute] is pure, and nothing in this repo is allowed
   to change what it computes silently: the hot paths may be rewritten
   for speed, but the outcome — dead set, out/in results, and the
   cost-model stats — must stay byte-identical. This test pins the
   outcomes of figs 1-6 under all three modes by digesting the
   marshalled value (without sharing, so only the abstract value
   matters, not its in-memory shape).

   If a deliberate semantic change shifts these, regenerate with

     GOLDEN_DUMP=1 dune exec test/test_golden_trace.exe

   and paste the printed table over [expected]. *)

open Dgc_simcore
open Dgc_rts
open Dgc_core
open Dgc_workload

let cfg_atomic =
  {
    Config.default with
    Config.delta = 3;
    threshold2 = 6;
    trace_duration = Sim_time.zero;
  }

let suspect_everything eng =
  Array.iter
    (fun s ->
      Tables.iter_inrefs s.Site.tables (fun ir ->
          List.iter
            (fun src -> Ioref.set_source_dist ir src.Ioref.src_site ~dist:50)
            ir.Ioref.ir_sources))
    (Engine.sites eng)

let figs : (string * (unit -> Sim.t)) list =
  [
    ("fig1", fun () -> (Scenario.fig1 ~cfg:cfg_atomic ()).Scenario.f1_sim);
    ("fig2", fun () -> (Scenario.fig2 ~cfg:cfg_atomic ()).Scenario.f2_sim);
    ("fig3", fun () -> (Scenario.fig3 ~cfg:cfg_atomic ()).Scenario.f3_sim);
    ("fig4", fun () -> (Scenario.fig4 ~cfg:cfg_atomic ()).Scenario.f4_sim);
    ("fig5", fun () -> (Scenario.fig5 ~cfg:cfg_atomic ()).Scenario.f5_sim);
    ("fig6", fun () -> (fst (Scenario.fig6 ~cfg:cfg_atomic ())).Scenario.f5_sim);
  ]

let modes =
  [
    ("bottom_up", Local_trace.Bottom_up);
    ("independent", Local_trace.Independent);
    ("naive", Local_trace.Naive_bottom_up);
  ]

(* One digest per (fig, mode): the concatenation of the marshalled
   outcome of every site, in site order. [No_sharing] is essential —
   two structurally equal outcomes must digest equally even if their
   heap representations share differently. *)
let digest_of sim mode =
  let eng = sim.Sim.eng in
  let buf = Buffer.create 4096 in
  Array.iter
    (fun s ->
      let inp = Local_trace.input_of_site eng s in
      let outcome = Local_trace.compute ~mode inp in
      Buffer.add_string buf (Marshal.to_string outcome [ Marshal.No_sharing ]))
    (Engine.sites eng);
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* Two table states per figure: "fresh" (conservative initial
   distances, as drawn) and "settled" (4 trace rounds converged the
   distances, then every inref re-suspected). Fresh is where fig4's
   naive mode visibly diverges from the SCC-correct one. *)
let compute_all () =
  List.concat_map
    (fun (fig, build) ->
      List.concat_map
        (fun (vname, rounds) ->
          let sim = build () in
          Scenario.settle sim ~rounds;
          suspect_everything sim.Sim.eng;
          List.map
            (fun (mname, mode) ->
              ((fig ^ "." ^ vname, mname), digest_of sim mode))
            modes)
        [ ("fresh", 0); ("settled", 4) ])
    figs

let expected =
  [
    (("fig1.fresh", "bottom_up"), "791b04e02f343d51e9fe5cf447e8c06c");
    (("fig1.fresh", "independent"), "791b04e02f343d51e9fe5cf447e8c06c");
    (("fig1.fresh", "naive"), "791b04e02f343d51e9fe5cf447e8c06c");
    (("fig1.settled", "bottom_up"), "3630620fe328cb4c527b541dfaa1a455");
    (("fig1.settled", "independent"), "3630620fe328cb4c527b541dfaa1a455");
    (("fig1.settled", "naive"), "3630620fe328cb4c527b541dfaa1a455");
    (("fig2.fresh", "bottom_up"), "c786e5e634743e058372987feeb5e229");
    (("fig2.fresh", "independent"), "f9fe454f27adc1d42200025b24f914c0");
    (("fig2.fresh", "naive"), "c786e5e634743e058372987feeb5e229");
    (("fig2.settled", "bottom_up"), "c786e5e634743e058372987feeb5e229");
    (("fig2.settled", "independent"), "f9fe454f27adc1d42200025b24f914c0");
    (("fig2.settled", "naive"), "c786e5e634743e058372987feeb5e229");
    (("fig3.fresh", "bottom_up"), "f4a64692c693dbad09c95c24516e2035");
    (("fig3.fresh", "independent"), "32cef45b0ea5ac4a544a1ed4a1d2e30e");
    (("fig3.fresh", "naive"), "f4a64692c693dbad09c95c24516e2035");
    (("fig3.settled", "bottom_up"), "f4a64692c693dbad09c95c24516e2035");
    (("fig3.settled", "independent"), "32cef45b0ea5ac4a544a1ed4a1d2e30e");
    (("fig3.settled", "naive"), "f4a64692c693dbad09c95c24516e2035");
    (("fig4.fresh", "bottom_up"), "e2d61b30b4ba162a46349d3c3870ab6d");
    (("fig4.fresh", "independent"), "ba6f411076411a1ed74341563e081aab");
    (("fig4.fresh", "naive"), "447fac5603fe1182ea1716f74be69f6d");
    (("fig4.settled", "bottom_up"), "b675c4947413ab80a863586d2f1db1ca");
    (("fig4.settled", "independent"), "b675c4947413ab80a863586d2f1db1ca");
    (("fig4.settled", "naive"), "b675c4947413ab80a863586d2f1db1ca");
    (("fig5.fresh", "bottom_up"), "187e4d4145d83e70de5442356c0a4410");
    (("fig5.fresh", "independent"), "187e4d4145d83e70de5442356c0a4410");
    (("fig5.fresh", "naive"), "187e4d4145d83e70de5442356c0a4410");
    (("fig5.settled", "bottom_up"), "187e4d4145d83e70de5442356c0a4410");
    (("fig5.settled", "independent"), "187e4d4145d83e70de5442356c0a4410");
    (("fig5.settled", "naive"), "187e4d4145d83e70de5442356c0a4410");
    (("fig6.fresh", "bottom_up"), "683bc5b6e5afbf8d1e4d9ab7b2acb913");
    (("fig6.fresh", "independent"), "ec4b8cb252fa084316d1d7029522c181");
    (("fig6.fresh", "naive"), "683bc5b6e5afbf8d1e4d9ab7b2acb913");
    (("fig6.settled", "bottom_up"), "683bc5b6e5afbf8d1e4d9ab7b2acb913");
    (("fig6.settled", "independent"), "ec4b8cb252fa084316d1d7029522c181");
    (("fig6.settled", "naive"), "683bc5b6e5afbf8d1e4d9ab7b2acb913");
  ]

let dump () =
  List.iter
    (fun ((fig, mode), d) ->
      Printf.printf "    ((%S, %S), %S);\n" fig mode d)
    (compute_all ())

let test_golden () =
  let got = compute_all () in
  List.iter
    (fun ((fig, mode), want) ->
      match List.assoc_opt (fig, mode) got with
      | None -> Alcotest.failf "%s/%s: no digest computed" fig mode
      | Some d ->
          Alcotest.(check string)
            (Printf.sprintf "%s/%s outcome digest" fig mode)
            want d)
    expected;
  Alcotest.(check int)
    "digest count" (List.length expected) (List.length got)

let () =
  if Sys.getenv_opt "GOLDEN_DUMP" = Some "1" then dump ()
  else
    Alcotest.run "golden_trace"
      [
        ( "golden",
          [ Alcotest.test_case "figs 1-6, all modes" `Quick test_golden ] );
      ]
