(* Golden outcomes for the local trace.

   [Local_trace.compute] is pure, and nothing in this repo is allowed
   to change what it computes silently: the hot paths may be rewritten
   for speed, but the outcome — dead set, out/in results, and the
   cost-model stats — must stay byte-identical. This test pins the
   outcomes of figs 1-6 under all three modes by digesting the
   marshalled value (without sharing, so only the abstract value
   matters, not its in-memory shape).

   If a deliberate semantic change shifts these, regenerate with

     GOLDEN_DUMP=1 dune exec test/test_golden_trace.exe

   and paste the printed table over [expected]. *)

open Dgc_simcore
open Dgc_rts
open Dgc_core
open Dgc_workload

let cfg_atomic =
  {
    Config.default with
    Config.delta = 3;
    threshold2 = 6;
    trace_duration = Sim_time.zero;
  }

let suspect_everything eng =
  Array.iter
    (fun s ->
      Tables.iter_inrefs s.Site.tables (fun ir ->
          List.iter
            (fun src -> Ioref.set_source_dist ir src.Ioref.src_site ~dist:50)
            ir.Ioref.ir_sources))
    (Engine.sites eng)

let figs : (string * (unit -> Sim.t)) list =
  [
    ("fig1", fun () -> (Scenario.fig1 ~cfg:cfg_atomic ()).Scenario.f1_sim);
    ("fig2", fun () -> (Scenario.fig2 ~cfg:cfg_atomic ()).Scenario.f2_sim);
    ("fig3", fun () -> (Scenario.fig3 ~cfg:cfg_atomic ()).Scenario.f3_sim);
    ("fig4", fun () -> (Scenario.fig4 ~cfg:cfg_atomic ()).Scenario.f4_sim);
    ("fig5", fun () -> (Scenario.fig5 ~cfg:cfg_atomic ()).Scenario.f5_sim);
    ("fig6", fun () -> (fst (Scenario.fig6 ~cfg:cfg_atomic ())).Scenario.f5_sim);
  ]

let modes =
  [
    ("bottom_up", Local_trace.Bottom_up);
    ("independent", Local_trace.Independent);
    ("naive", Local_trace.Naive_bottom_up);
  ]

(* One digest per (fig, mode): the concatenation of the marshalled
   outcome of every site, in site order. [No_sharing] is essential —
   two structurally equal outcomes must digest equally even if their
   heap representations share differently. *)
let digest_of sim mode =
  let eng = sim.Sim.eng in
  let buf = Buffer.create 4096 in
  Array.iter
    (fun s ->
      let inp = Local_trace.input_of_site eng s in
      let outcome = Local_trace.compute ~mode inp in
      Buffer.add_string buf (Marshal.to_string outcome [ Marshal.No_sharing ]))
    (Engine.sites eng);
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* Two table states per figure: "fresh" (conservative initial
   distances, as drawn) and "settled" (4 trace rounds converged the
   distances, then every inref re-suspected). Fresh is where fig4's
   naive mode visibly diverges from the SCC-correct one. *)
let compute_all () =
  List.concat_map
    (fun (fig, build) ->
      List.concat_map
        (fun (vname, rounds) ->
          let sim = build () in
          Scenario.settle sim ~rounds;
          suspect_everything sim.Sim.eng;
          List.map
            (fun (mname, mode) ->
              ((fig ^ "." ^ vname, mname), digest_of sim mode))
            modes)
        [ ("fresh", 0); ("settled", 4) ])
    figs

let expected =
  [
    (("fig1.fresh", "bottom_up"), "b111759e9a8b97a951502306e5f6a513");
    (("fig1.fresh", "independent"), "b111759e9a8b97a951502306e5f6a513");
    (("fig1.fresh", "naive"), "b111759e9a8b97a951502306e5f6a513");
    (("fig1.settled", "bottom_up"), "0232d850fb1dc93aef7e916b7a4d90cb");
    (("fig1.settled", "independent"), "0232d850fb1dc93aef7e916b7a4d90cb");
    (("fig1.settled", "naive"), "0232d850fb1dc93aef7e916b7a4d90cb");
    (("fig2.fresh", "bottom_up"), "297d998bbe3edd7cd991f241e8a019c2");
    (("fig2.fresh", "independent"), "a79f73fba0e82dfd26c8bfe07be6b72f");
    (("fig2.fresh", "naive"), "297d998bbe3edd7cd991f241e8a019c2");
    (("fig2.settled", "bottom_up"), "297d998bbe3edd7cd991f241e8a019c2");
    (("fig2.settled", "independent"), "a79f73fba0e82dfd26c8bfe07be6b72f");
    (("fig2.settled", "naive"), "297d998bbe3edd7cd991f241e8a019c2");
    (("fig3.fresh", "bottom_up"), "c007b3d3ab9bdeb5dd92d1fde034a765");
    (("fig3.fresh", "independent"), "8121519ce16fd4fdd6f11780bb6b5e3f");
    (("fig3.fresh", "naive"), "c007b3d3ab9bdeb5dd92d1fde034a765");
    (("fig3.settled", "bottom_up"), "c007b3d3ab9bdeb5dd92d1fde034a765");
    (("fig3.settled", "independent"), "8121519ce16fd4fdd6f11780bb6b5e3f");
    (("fig3.settled", "naive"), "c007b3d3ab9bdeb5dd92d1fde034a765");
    (("fig4.fresh", "bottom_up"), "213b8894a0f664f0cd0022287f46192e");
    (("fig4.fresh", "independent"), "fb9d14b50be9f602c54f8f35bad8a018");
    (("fig4.fresh", "naive"), "82fcec8beb8d4f95a768b6f04d72ad10");
    (("fig4.settled", "bottom_up"), "fa7b975606301418404672af5bb0a504");
    (("fig4.settled", "independent"), "fa7b975606301418404672af5bb0a504");
    (("fig4.settled", "naive"), "fa7b975606301418404672af5bb0a504");
    (("fig5.fresh", "bottom_up"), "a259d4814944bd7daa7afccc4ceb0934");
    (("fig5.fresh", "independent"), "a259d4814944bd7daa7afccc4ceb0934");
    (("fig5.fresh", "naive"), "a259d4814944bd7daa7afccc4ceb0934");
    (("fig5.settled", "bottom_up"), "a259d4814944bd7daa7afccc4ceb0934");
    (("fig5.settled", "independent"), "a259d4814944bd7daa7afccc4ceb0934");
    (("fig5.settled", "naive"), "a259d4814944bd7daa7afccc4ceb0934");
    (("fig6.fresh", "bottom_up"), "6dd30c885326e30f35588b7f81a41f66");
    (("fig6.fresh", "independent"), "aabab30a04e674332e83810303a3f1ed");
    (("fig6.fresh", "naive"), "6dd30c885326e30f35588b7f81a41f66");
    (("fig6.settled", "bottom_up"), "6dd30c885326e30f35588b7f81a41f66");
    (("fig6.settled", "independent"), "aabab30a04e674332e83810303a3f1ed");
    (("fig6.settled", "naive"), "6dd30c885326e30f35588b7f81a41f66");
  ]

let dump () =
  List.iter
    (fun ((fig, mode), d) ->
      Printf.printf "    ((%S, %S), %S);\n" fig mode d)
    (compute_all ())

let test_golden () =
  let got = compute_all () in
  List.iter
    (fun ((fig, mode), want) ->
      match List.assoc_opt (fig, mode) got with
      | None -> Alcotest.failf "%s/%s: no digest computed" fig mode
      | Some d ->
          Alcotest.(check string)
            (Printf.sprintf "%s/%s outcome digest" fig mode)
            want d)
    expected;
  Alcotest.(check int)
    "digest count" (List.length expected) (List.length got)

let () =
  if Sys.getenv_opt "GOLDEN_DUMP" = Some "1" then dump ()
  else
    Alcotest.run "golden_trace"
      [
        ( "golden",
          [ Alcotest.test_case "figs 1-6, all modes" `Quick test_golden ] );
      ]
