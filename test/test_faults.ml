(* Fault model: partitions (parking and healing), crash interplay, and
   the §4.7 deferred/piggybacked message mode. *)

open Dgc_prelude
open Dgc_simcore
open Dgc_heap
open Dgc_rts
open Dgc_core
open Dgc_workload

let s k = Site_id.of_int k

let cfg n =
  {
    Config.default with
    Config.n_sites = n;
    delta = 3;
    threshold2 = 6;
    threshold_bump = 4;
    trace_interval = Sim_time.of_seconds 10.;
    trace_jitter = Sim_time.of_seconds 1.;
    trace_duration = Sim_time.zero;
    latency = Latency.Fixed (Sim_time.of_millis 5.);
  }

(* --- partitions ---------------------------------------------------------- *)

let test_reachability () =
  let eng = Engine.create (cfg 4) in
  Alcotest.(check bool) "initially connected" true
    (Engine.reachable eng (s 0) (s 3));
  Engine.partition eng [ [ s 0; s 1 ]; [ s 2 ] ];
  Alcotest.(check bool) "same group" true (Engine.reachable eng (s 0) (s 1));
  Alcotest.(check bool) "cross group" false (Engine.reachable eng (s 0) (s 2));
  (* unlisted sites form the implicit extra group *)
  Alcotest.(check bool) "implicit group isolated from group 0" false
    (Engine.reachable eng (s 0) (s 3));
  Engine.heal eng;
  Alcotest.(check bool) "healed" true (Engine.reachable eng (s 0) (s 2))

let test_partition_parks_base_messages () =
  let eng = Engine.create (cfg 2) in
  let journal = Journal.create ~capacity:256 () in
  Engine.attach_journal eng journal;
  Local_gc.install eng;
  let muts = Mutator.manager eng in
  let root0 = Builder.root_obj eng (s 0) in
  let target = Builder.root_obj eng (s 1) in
  Builder.link eng ~src:root0 ~dst:target;
  let a = Mutator.spawn muts ~at:(s 0) in
  ignore (Mutator.load_root a ~dst:"r");
  ignore (Mutator.read_field a ~obj:"r" ~idx:0 ~dst:"t");
  Engine.partition eng [ [ s 0 ]; [ s 1 ] ];
  let arrived = ref false in
  ignore (Mutator.travel a ~via:"t" ~k:(fun () -> arrived := true));
  Engine.run_for eng (Sim_time.of_seconds 2.);
  Alcotest.(check bool) "move parked across the partition" false !arrived;
  (* the carried references still count as roots for the oracle *)
  Alcotest.(check bool) "parked refs are oracle roots" true
    (Engine.in_flight_refs eng <> []);
  (* the stalled insert barrier is journaled, not silent *)
  Alcotest.(check bool) "barrier.move_stalled counted" true
    (Metrics.get (Engine.metrics eng) "barrier.move_stalled" >= 1);
  let stalls = Journal.entries ~cat:"barrier" ~min_level:Journal.Warn journal in
  Alcotest.(check bool) "move stall journaled at Warn" true
    (List.exists
       (fun e -> String.length e.Journal.text >= 4
                 && String.sub e.Journal.text 0 4 = "move")
       stalls);
  Engine.heal eng;
  Engine.run_for eng (Sim_time.of_seconds 2.);
  Alcotest.(check bool) "delivered after heal" true !arrived

let test_partition_move_ack_stall_journaled () =
  (* The §6.1.2 ack leg: the Move itself lands before the partition,
     but the Move_ack releasing the sender's pins is in flight when the
     partition hits. The stall must land in the journal (Warn, cat
     "barrier") and in [barrier.move_stalled] — previously the ack was
     parked silently. *)
  let eng = Engine.create (cfg 2) in
  let journal = Journal.create ~capacity:256 () in
  Engine.attach_journal eng journal;
  Local_gc.install eng;
  let muts = Mutator.manager eng in
  let root0 = Builder.root_obj eng (s 0) in
  let target = Builder.root_obj eng (s 1) in
  Builder.link eng ~src:root0 ~dst:target;
  let a = Mutator.spawn muts ~at:(s 0) in
  ignore (Mutator.load_root a ~dst:"r");
  ignore (Mutator.read_field a ~obj:"r" ~idx:0 ~dst:"t");
  (* Carry only the destination-local ref so the arrival needs no
     Insert round and the ack goes straight back. *)
  ignore (Mutator.drop a "r");
  (* Fixed 5ms latency: the Move delivers at +5ms, its ack would land
     at +10ms; partition at +7ms catches the ack in flight. *)
  Engine.schedule eng ~delay:(Sim_time.of_millis 7.) (fun () ->
      Engine.partition eng [ [ s 0 ]; [ s 1 ] ]);
  let arrived = ref false in
  ignore (Mutator.travel a ~via:"t" ~k:(fun () -> arrived := true));
  Engine.run_for eng (Sim_time.of_seconds 2.);
  Alcotest.(check bool) "mutator landed before the partition" true !arrived;
  Alcotest.(check bool) "ack stall counted" true
    (Metrics.get (Engine.metrics eng) "barrier.move_stalled" >= 1);
  let stalls = Journal.entries ~cat:"barrier" ~min_level:Journal.Warn journal in
  Alcotest.(check bool) "ack stall names the pins" true
    (List.exists
       (fun e ->
         String.length e.Journal.text >= 8
         && String.sub e.Journal.text 0 8 = "move-ack")
       stalls);
  (* sender pins survive until the heal lets the ack through *)
  Engine.heal eng;
  Engine.run_for eng (Sim_time.of_seconds 2.);
  Alcotest.(check bool) "pins released after heal" true
    (Engine.in_flight_refs eng = [])

let test_partition_delays_cycle_collection () =
  let sim = Sim.make ~cfg:(cfg 4) () in
  let eng = sim.Sim.eng in
  (* One cycle inside a partition group, one across the boundary. *)
  ignore (Graph_gen.ring eng ~sites:[ s 0; s 1 ] ~per_site:1 ~rooted:false);
  ignore (Graph_gen.ring eng ~sites:[ s 2; s 3 ] ~per_site:1 ~rooted:false);
  Engine.partition eng [ [ s 0; s 1; s 2 ]; [ s 3 ] ];
  Sim.start sim;
  Sim.run_rounds sim 20;
  let alive sites =
    List.fold_left
      (fun acc site -> acc + Heap.object_count (Engine.site eng site).Site.heap)
      0 sites
  in
  Alcotest.(check int) "cycle inside the group collected" 0
    (alive [ s 0; s 1 ]);
  Alcotest.(check bool) "cross-boundary cycle survives" true
    (alive [ s 2; s 3 ] > 0);
  Engine.heal eng;
  let ok = Sim.collect_all sim ~max_rounds:40 () in
  Alcotest.(check bool) "collected after heal" true ok

let test_partition_in_flight_message_parked () =
  let eng = Engine.create (cfg 2) in
  Local_gc.install eng;
  (* Fire a base message, partition while it flies. *)
  Engine.send eng ~src:(s 0) ~dst:(s 1)
    (Protocol.Update { removals = []; dists = [] });
  Engine.partition eng [ [ s 0 ]; [ s 1 ] ];
  Engine.run_for eng (Sim_time.of_seconds 1.);
  (* It must not have been lost: heal and deliver (observable via the
     absence of errors and via metrics bookkeeping). *)
  Engine.heal eng;
  Engine.run_for eng (Sim_time.of_seconds 1.);
  Alcotest.(check int) "nothing dropped" 0
    (Metrics.get (Engine.metrics eng) "msg.dropped.partition")

let test_partitioned_back_trace_assumes_live () =
  (* A back trace crossing a partition boundary times out to Live and
     the garbage survives until the heal — safety first. *)
  let sim = Sim.make ~cfg:(cfg 2) () in
  let eng = sim.Sim.eng in
  ignore (Graph_gen.ring eng ~sites:[ s 0; s 1 ] ~per_site:1 ~rooted:false);
  Scenario.settle sim ~rounds:8;
  Engine.partition eng [ [ s 0 ]; [ s 1 ] ];
  let outcome = ref None in
  Back_trace.on_outcome (Collector.back sim.Sim.col) (fun _ v _ ->
      outcome := Some v);
  let started = ref false in
  Array.iter
    (fun st ->
      Tables.iter_outrefs st.Site.tables (fun o ->
          if (not !started) && not (Ioref.outref_clean o) then begin
            started :=
              Collector.start_back_trace sim.Sim.col st.Site.id
                o.Ioref.or_target
              <> None
          end))
    (Engine.sites eng);
  Alcotest.(check bool) "trace started" true !started;
  Sim.run_for sim (Sim_time.of_seconds 30.);
  (match !outcome with
  | Some v ->
      Alcotest.(check bool) "timeout reads as Live" true
        (Verdict.equal v Verdict.Live)
  | None -> Alcotest.fail "trace never completed");
  Alcotest.(check bool) "garbage preserved" true
    (Dgc_oracle.Oracle.garbage_count eng > 0)

(* --- audit under faults (the observe library) ----------------------------- *)

module Obs = Dgc_observe
module Tel = Dgc_telemetry

(* A 2-site garbage ring with a tracer attached and distances settled:
   one cross-site garbage component, ready to trace. *)
let garbage_ring_sim ?(timeout = 10.) () =
  let c =
    { (cfg 2) with Config.back_call_timeout = Sim_time.of_seconds timeout }
  in
  let sim = Sim.make ~cfg:c () in
  ignore
    (Graph_gen.ring sim.Sim.eng ~sites:[ s 0; s 1 ] ~per_site:1 ~rooted:false);
  Engine.attach_tracer sim.Sim.eng (Tel.Tracer.create ());
  Scenario.settle sim ~rounds:8;
  sim

let start_any_trace sim =
  let started = ref None in
  Array.iter
    (fun st ->
      Tables.iter_outrefs st.Site.tables (fun o ->
          if !started = None && not (Ioref.outref_clean o) then
            started :=
              Collector.start_back_trace sim.Sim.col st.Site.id
                o.Ioref.or_target))
    (Engine.sites sim.Sim.eng);
  Alcotest.(check bool) "trace started" true (!started <> None)

let the_component rp =
  match rp.Obs.Audit.rp_components with
  | [ c ] -> c
  | cs ->
      Alcotest.failf "expected one garbage component, got %d" (List.length cs)

let check_explained rp c =
  Alcotest.(check bool) "has evidence" true (c.Obs.Audit.co_evidence <> []);
  Alcotest.(check bool) "names the trace" true (c.Obs.Audit.co_traces <> []);
  Alcotest.(check (list string)) "strict gate passes" []
    (Obs.Audit.strict_failures rp)

let test_audit_crash_mid_trace_times_out () =
  let sim = garbage_ring_sim () in
  start_any_trace sim;
  (* the back call is in flight; the destination dies before replying,
     the §4.6 timeout concludes Live, the cycle survives *)
  Engine.crash sim.Sim.eng (s 1);
  Sim.run_for sim (Sim_time.of_seconds 60.);
  let rp = Obs.Audit.run sim.Sim.col in
  let c = the_component rp in
  (match c.Obs.Audit.co_verdict with
  | Obs.Audit.Trace_timed_out -> ()
  | v ->
      Alcotest.failf "verdict %s, wanted TraceTimedOut"
        (Obs.Audit.verdict_name v));
  check_explained rp c

let test_audit_crash_mid_trace_incomplete () =
  (* With a slack timeout the crashed call never resolves at all: the
     trace has no outcome and the open spans are the evidence. *)
  let sim = garbage_ring_sim ~timeout:600. () in
  start_any_trace sim;
  Engine.crash sim.Sim.eng (s 1);
  Sim.run_for sim (Sim_time.of_seconds 60.);
  let rp = Obs.Audit.run sim.Sim.col in
  let c = the_component rp in
  (match c.Obs.Audit.co_verdict with
  | Obs.Audit.Trace_incomplete -> ()
  | v ->
      Alcotest.failf "verdict %s, wanted TraceIncomplete"
        (Obs.Audit.verdict_name v));
  check_explained rp c

let test_audit_partition_during_report () =
  let sim = garbage_ring_sim () in
  let eng = sim.Sim.eng in
  let tracer =
    match Engine.tracer eng with Some t -> t | None -> assert false
  in
  (* Partition the moment a report span opens: the report to the other
     participant crosses the boundary and is dropped. *)
  let fired = ref false in
  Engine.add_step_watcher eng (fun () ->
      if
        (not !fired)
        && List.exists
             (fun sp -> sp.Tel.Tracer.name = "report")
             (Tel.Tracer.open_spans tracer)
      then begin
        fired := true;
        Engine.partition eng [ [ s 0 ]; [ s 1 ] ]
      end);
  start_any_trace sim;
  Sim.run_for sim (Sim_time.of_seconds 60.);
  Alcotest.(check bool) "partition landed during the report phase" true !fired;
  let rp = Obs.Audit.run sim.Sim.col in
  if rp.Obs.Audit.rp_garbage_objects > 0 then begin
    let c = the_component rp in
    (match c.Obs.Audit.co_verdict with
    | Obs.Audit.Trace_incomplete | Obs.Audit.Trace_timed_out
    | Obs.Audit.Flagged_not_swept ->
        ()
    | v ->
        Alcotest.failf "verdict %s, wanted an incomplete/timeout family one"
          (Obs.Audit.verdict_name v));
    check_explained rp c
  end

(* --- deferral (§4.7) ------------------------------------------------------ *)

let test_deferral_batches_messages () =
  let cfg_defer =
    { (cfg 3) with Config.defer_interval = Sim_time.of_millis 100. }
  in
  let sim = Sim.make ~cfg:cfg_defer () in
  let eng = sim.Sim.eng in
  ignore (Graph_gen.ring eng ~sites:[ s 0; s 1; s 2 ] ~per_site:2 ~rooted:false);
  Sim.start sim;
  let ok = Sim.collect_all sim ~max_rounds:40 () in
  Alcotest.(check bool) "collection still completes" true ok;
  let m = Engine.metrics eng in
  Alcotest.(check bool) "batches were used" true (Metrics.get m "msg.batches" > 0);
  (* every wire batch carried at least one back-trace payload *)
  Alcotest.(check bool) "payload counters unchanged semantics" true
    (Metrics.get m "msg.back_call" > 0)

let test_deferral_wire_savings () =
  (* Same workload with and without deferral: deferral must not
     increase the number of wire messages attributable to the back
     tracer (batching can only merge). *)
  let run defer =
    let c =
      {
        (cfg 3) with
        Config.defer_interval =
          (if defer then Sim_time.of_millis 200. else Sim_time.zero);
        back_call_timeout = Sim_time.of_seconds 20.;
        seed = 11;
      }
    in
    let sim = Sim.make ~cfg:c () in
    ignore
      (Graph_gen.clique sim.Sim.eng ~sites:[ s 0; s 1; s 2 ] ~rooted:false);
    Sim.start sim;
    ignore (Sim.collect_all sim ~max_rounds:60 ());
    let m = Engine.metrics sim.Sim.eng in
    (Metrics.get m "msg.total", Metrics.get m "msg.back_call")
  in
  let eager_total, eager_calls = run false in
  let defer_total, defer_calls = run true in
  Alcotest.(check bool) "work comparable (logical calls)" true
    (defer_calls > 0 && eager_calls > 0);
  Alcotest.(check bool)
    (Format.asprintf "wire messages do not blow up (%d eager vs %d deferred)"
       eager_total defer_total)
    true
    (defer_total <= eager_total * 2)

let () =
  Alcotest.run "faults"
    [
      ( "partition",
        [
          Alcotest.test_case "reachability" `Quick test_reachability;
          Alcotest.test_case "base messages park" `Quick
            test_partition_parks_base_messages;
          Alcotest.test_case "in-flight move-ack stall is journaled" `Quick
            test_partition_move_ack_stall_journaled;
          Alcotest.test_case "cycle collection localized" `Quick
            test_partition_delays_cycle_collection;
          Alcotest.test_case "in-flight parked" `Quick
            test_partition_in_flight_message_parked;
          Alcotest.test_case "back trace assumes Live" `Quick
            test_partitioned_back_trace_assumes_live;
        ] );
      ( "audit",
        [
          Alcotest.test_case "crash mid-trace -> TraceTimedOut" `Quick
            test_audit_crash_mid_trace_times_out;
          Alcotest.test_case "crash mid-trace, slack timeout -> TraceIncomplete"
            `Quick test_audit_crash_mid_trace_incomplete;
          Alcotest.test_case "partition during the report phase" `Quick
            test_audit_partition_during_report;
        ] );
      ( "deferral",
        [
          Alcotest.test_case "batches and still collects" `Quick
            test_deferral_batches_messages;
          Alcotest.test_case "wire savings" `Quick test_deferral_wire_savings;
        ] );
    ]
