(* The flight recorder: ring semantics (eviction, payload clamping,
   out-of-range sites), the strict byte-identical dgc.flight/1 round
   trip and its rejection paths, engine integration (always-on via
   Sim.make, open spans aborted on dump, schedule neutrality) and the
   chaos tie-in: a failing corpus replay emits a bit-deterministic
   flight dump containing the causally-relevant events. *)

open Dgc_prelude
open Dgc_simcore
open Dgc_rts
open Dgc_core
open Dgc_workload
open Dgc_telemetry
module Campaign = Dgc_chaos.Campaign
module Plan = Dgc_chaos.Plan

let cfg_fast =
  {
    Config.default with
    Config.delta = 3;
    threshold2 = 6;
    threshold_bump = 4;
    trace_duration = Sim_time.zero;
  }

(* --- ring semantics ---------------------------------------------------- *)

let test_record_decode () =
  let f = Flight.create ~n_sites:2 () in
  Flight.record f ~site:0 ~at:1.0 ~kind:Flight.Send ~a:0 ~b:1 ~tag:"update" ();
  Flight.record f ~site:1 ~at:1.5 ~kind:Flight.Deliver ~a:0 ~b:1 ~tag:"update"
    ~payload:"m7" ();
  Flight.record f ~site:(-1) ~at:2.0 ~kind:Flight.Fault ~tag:"crash"
    ~payload:"2" ();
  Flight.record f ~site:9 ~at:3.0 ~kind:Flight.Timer ();
  Alcotest.(check int) "out-of-range site ignored" 0 (Flight.written f ~site:9);
  let d = Flight.dump f ~reason:"unit" ~at:2.5 in
  Alcotest.(check string) "reason" "unit" (Flight.reason d);
  Alcotest.(check (float 0.)) "dump_at" 2.5 (Flight.dump_at d);
  Alcotest.(check (list int)) "sites, global first" [ -1; 0; 1 ]
    (Flight.sites d);
  (match Flight.events d ~site:0 with
  | [ ev ] ->
      Alcotest.(check string) "kind" "send" (Flight.kind_name ev.Flight.ev_kind);
      Alcotest.(check int) "a" 0 ev.Flight.ev_a;
      Alcotest.(check int) "b" 1 ev.Flight.ev_b;
      Alcotest.(check string) "tag" "update" ev.Flight.ev_tag;
      Alcotest.(check (float 0.)) "at" 1.0 ev.Flight.ev_at
  | evs -> Alcotest.failf "site 0: %d events" (List.length evs));
  (match Flight.events d ~site:1 with
  | [ ev ] ->
      Alcotest.(check string) "payload" "m7" ev.Flight.ev_payload
  | evs -> Alcotest.failf "site 1: %d events" (List.length evs));
  (match Flight.events d ~site:(-1) with
  | [ ev ] ->
      Alcotest.(check string) "kind" "fault"
        (Flight.kind_name ev.Flight.ev_kind);
      Alcotest.(check string) "payload" "2" ev.Flight.ev_payload;
      Alcotest.(check int) "a defaults to -1" (-1) ev.Flight.ev_a
  | evs -> Alcotest.failf "global ring: %d events" (List.length evs));
  Alcotest.(check int) "absent site decodes empty" 0
    (List.length (Flight.events d ~site:5))

let test_eviction_keeps_newest () =
  (* 1024 is the minimum capacity (anything smaller is rejected); each
     record here is 2 + 21 + 4 = 27 bytes, so 200 records overflow. *)
  (match Flight.create ~capacity:16 ~n_sites:1 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "sub-minimum capacity accepted");
  let f = Flight.create ~capacity:1024 ~n_sites:1 () in
  Alcotest.(check int) "capacity as requested" 1024 (Flight.capacity f);
  for i = 0 to 199 do
    Flight.record f ~site:0 ~at:(float_of_int i) ~kind:Flight.Timer ~a:i
      ~tag:"tick" ()
  done;
  let written = Flight.written f ~site:0
  and evicted = Flight.evicted f ~site:0 in
  Alcotest.(check int) "written counts evicted records too" 200 written;
  Alcotest.(check bool) "ring overflowed" true (evicted > 0);
  let evs = Flight.events (Flight.dump f ~reason:"evict" ~at:200.) ~site:0 in
  Alcotest.(check int) "live records = written - evicted" (written - evicted)
    (List.length evs);
  (match evs with
  | first :: _ ->
      Alcotest.(check int) "oldest survivor sits at the eviction edge" evicted
        first.Flight.ev_a
  | [] -> Alcotest.fail "no events survived");
  let last = List.nth evs (List.length evs - 1) in
  Alcotest.(check int) "newest record always retained" 199 last.Flight.ev_a

let test_payload_clamp () =
  let f = Flight.create ~n_sites:1 () in
  Flight.record f ~site:0 ~at:0. ~kind:Flight.Journal ~tag:"note"
    ~payload:(String.make 400 'x') ();
  match Flight.events (Flight.dump f ~reason:"clamp" ~at:0.) ~site:0 with
  | [ ev ] ->
      Alcotest.(check int) "payload clamped to 255" 255
        (String.length ev.Flight.ev_payload);
      Alcotest.(check string) "clamp keeps the prefix" (String.make 255 'x')
        ev.Flight.ev_payload
  | evs -> Alcotest.failf "expected one event, got %d" (List.length evs)

(* --- dgc.flight/1 round trip ------------------------------------------- *)

let kinds =
  [|
    Flight.Send;
    Flight.Deliver;
    Flight.Drop;
    Flight.Fault;
    Flight.Journal;
    Flight.Span_start;
    Flight.Span_end;
    Flight.Timer;
  |]

let test_random_round_trip () =
  let rng = Rng.create ~seed:42 in
  for _trial = 1 to 40 do
    let n_sites = 1 + Rng.int rng 3 in
    let f = Flight.create ~capacity:(1024 * (1 + Rng.int rng 2)) ~n_sites () in
    for _ = 1 to Rng.int rng 120 do
      let payload =
        String.init (Rng.int rng 12) (fun _ -> Char.chr (Rng.int_in rng 32 126))
      in
      Flight.record f
        ~site:(Rng.int_in rng (-1) (n_sites - 1))
        ~at:(Rng.float rng 100.) ~kind:(Rng.choose_arr rng kinds)
        ~a:(Rng.int_in rng (-2) 1_000_000)
        ~b:(Rng.int_in rng (-2) 1_000_000)
        ~tag:(Rng.choose rng [ ""; "update"; "back"; "crash"; "t" ])
        ~payload ()
    done;
    let d = Flight.dump f ~reason:"fuzz" ~at:101. in
    let s = Json.to_string (Flight.to_json d) in
    let reparsed =
      match Json.parse s with
      | Ok j -> j
      | Error e -> Alcotest.failf "reparse: %s" e
    in
    match Flight.of_json reparsed with
    | Error e -> Alcotest.failf "of_json rejected its own dump: %s" e
    | Ok d' ->
        Alcotest.(check string) "byte-identical re-serialization" s
          (Json.to_string (Flight.to_json d'));
        List.iter
          (fun site ->
            Alcotest.(check int)
              (Printf.sprintf "site %d event count" site)
              (List.length (Flight.events d ~site))
              (List.length (Flight.events d' ~site)))
          (Flight.sites d)
  done

(* --- rejection of malformed documents ---------------------------------- *)

let base_doc () =
  let f = Flight.create ~n_sites:1 () in
  Flight.record f ~site:0 ~at:1.0 ~kind:Flight.Send ~a:0 ~b:1 ~tag:"update"
    ~payload:"hi" ();
  Flight.to_json (Flight.dump f ~reason:"mut" ~at:1.0)

let map_field name fn = function
  | Json.Obj fields ->
      Json.Obj
        (List.map (fun (k, v) -> if k = name then (k, fn v) else (k, v)) fields)
  | j -> j

let map_ring_data fn doc =
  map_field "rings"
    (function
      | Json.Arr rings ->
          Json.Arr
            (List.map
               (map_field "data" (function
                 | Json.Str s -> Json.Str (fn s)
                 | v -> v))
               rings)
      | v -> v)
    doc

let expect_reject name doc =
  match Flight.of_json doc with
  | Error _ -> ()
  | Ok _ -> Alcotest.failf "%s: malformed document accepted" name

let test_rejections () =
  let doc = base_doc () in
  (match Flight.of_json doc with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "pristine document rejected: %s" e);
  (* The global ring is empty; mutate only non-empty hex payloads. *)
  let nonempty fn s = if s = "" then s else fn s in
  expect_reject "truncated frame"
    (map_ring_data (nonempty (fun s -> String.sub s 0 (String.length s - 2))) doc);
  expect_reject "odd-length hex" (map_ring_data (nonempty (fun s -> s ^ "0")) doc);
  expect_reject "garbage hex"
    (map_ring_data
       (nonempty (fun s -> "zz" ^ String.sub s 2 (String.length s - 2)))
       doc);
  expect_reject "uppercase hex is not canonical"
    (map_ring_data (nonempty String.uppercase_ascii) doc);
  (* Hand-built frames: u16 length prefix (21 = 0x15), then the 21-byte
     body: kind, u16 tag, i32 a, i32 b, f64 at, u16 plen. *)
  let frame ~kind ~tag_id =
    Printf.sprintf "1500%02x%02x%02x" kind (tag_id land 0xff) (tag_id lsr 8)
    ^ "ffffffff" ^ "ffffffff" ^ "0000000000000000" ^ "0000"
  in
  expect_reject "unknown record kind"
    (map_ring_data (nonempty (fun _ -> frame ~kind:9 ~tag_id:0)) doc);
  expect_reject "dangling string id"
    (map_ring_data (nonempty (fun _ -> frame ~kind:1 ~tag_id:99)) doc);
  expect_reject "length prefix overruns the ring"
    (map_ring_data (nonempty (fun s -> s ^ "ff00")) doc);
  expect_reject "body shorter than the header"
    (map_ring_data (nonempty (fun _ -> "0400" ^ "01020304")) doc);
  let bad_plen =
    "1500" ^ "01" ^ "0000" ^ "ffffffff" ^ "ffffffff" ^ "0000000000000000"
    ^ "0200"
  in
  expect_reject "plen disagrees with the frame length"
    (map_ring_data (nonempty (fun _ -> bad_plen)) doc);
  expect_reject "wrong schema"
    (map_field "schema" (fun _ -> Json.Str "dgc.run/1") doc);
  expect_reject "not an object" (Json.Str "flight")

(* --- engine integration ------------------------------------------------ *)

let test_engine_dump_round_trip () =
  (* Sim.make attaches a recorder whenever cfg.flight_capacity > 0 (the
     default): a plain fig1 run must already be fully instrumented. *)
  let f = Scenario.fig1 ~cfg:cfg_fast () in
  let sim = f.Scenario.f1_sim in
  let eng = sim.Sim.eng in
  Engine.attach_journal eng (Journal.create ());
  Engine.attach_tracer eng (Tracer.create ());
  Sim.start sim;
  ignore (Sim.collect_all sim ~max_rounds:30 ());
  Engine.jlog eng ~cat:"test" "about to dump";
  let j =
    match Engine.dump_flight eng ~reason:"test: fig1" with
    | Some j -> j
    | None -> Alcotest.fail "default config did not attach a flight recorder"
  in
  let s = Json.to_string j in
  let d =
    match Flight.of_json j with
    | Ok d -> d
    | Error e -> Alcotest.failf "engine dump rejected: %s" e
  in
  Alcotest.(check string) "engine dump re-serializes byte-identically" s
    (Json.to_string (Flight.to_json d));
  Alcotest.(check string) "reason" "test: fig1" (Flight.reason d);
  let all = List.concat_map (fun site -> Flight.events d ~site) (Flight.sites d) in
  let has k = List.exists (fun e -> e.Flight.ev_kind = k) all in
  Alcotest.(check bool) "sends recorded" true (has Flight.Send);
  Alcotest.(check bool) "delivers recorded" true (has Flight.Deliver);
  Alcotest.(check bool) "journal mirrored into the global ring" true
    (List.exists
       (fun e -> e.Flight.ev_kind = Flight.Journal)
       (Flight.events d ~site:(-1)));
  Alcotest.(check bool) "span starts mirrored" true (has Flight.Span_start);
  Alcotest.(check bool) "span ends mirrored" true (has Flight.Span_end)

let test_dump_aborts_open_spans () =
  let f = Scenario.fig1 ~cfg:cfg_fast () in
  let sim = f.Scenario.f1_sim in
  let eng = sim.Sim.eng in
  let tracer = Tracer.create () in
  Engine.attach_tracer eng tracer;
  let _id = Tracer.start_span tracer ~trace:"t0" ~name:"manual" ~site:0 ~at:0.0 [] in
  Alcotest.(check int) "span is open before the dump" 1
    (Tracer.open_count tracer);
  (match Engine.dump_flight eng ~reason:"abort test" with
  | None -> Alcotest.fail "no recorder attached"
  | Some j -> (
      match Flight.of_json j with
      | Error e -> Alcotest.failf "dump rejected: %s" e
      | Ok d ->
          let ends =
            List.filter
              (fun e -> e.Flight.ev_kind = Flight.Span_end)
              (Flight.events d ~site:0)
          in
          Alcotest.(check bool) "aborted end edge (b=1) is in the dump" true
            (List.exists (fun e -> e.Flight.ev_b = 1) ends)));
  Alcotest.(check int) "the open span was aborted" 0 (Tracer.open_count tracer);
  Alcotest.(check int) "aborted_spans" 1 (Tracer.aborted_spans tracer);
  Alcotest.(check int) "tracer.aborted_spans metric" 1
    (Metrics.get (Engine.metrics eng) "tracer.aborted_spans")

(* --- chaos tie-in: auto-dump on failure, bit determinism --------------- *)

(* cwd is the test's build directory under `dune runtest` (the corpus
   is declared as a dep) but the workspace root under `dune exec`. *)
let corpus_dir () =
  match List.find_opt Sys.file_exists [ "corpus"; "test/corpus" ] with
  | Some d -> d
  | None -> Alcotest.fail "corpus directory not found"

(* san_lost_trace.json: fig2 under a drop window with timeouts off —
   the seeded replay that must fail as a leak and, with it, the case
   ISSUE.md pins for automatic flight capture. *)
let lost_trace_case () =
  let path = Filename.concat (corpus_dir ()) "san_lost_trace.json" in
  let doc =
    match Json.parse (In_channel.with_open_bin path In_channel.input_all) with
    | Ok j -> j
    | Error e -> Alcotest.failf "%s: %s" path e
  in
  let plan =
    match Plan.of_json doc with
    | Ok p -> p
    | Error e -> Alcotest.failf "%s: %s" path e
  in
  ( {
      Campaign.cs_name = "san_lost_trace";
      cs_workload = "fig2";
      cs_seed = 6;
      cs_horizon_ms = 30_000.;
      cs_plan = plan;
    },
    fun c -> { c with Config.sanitize = true; enable_timeouts = false } )

let test_campaign_failure_dumps_flight () =
  let case, tweak = lost_trace_case () in
  let a = Campaign.run_case ~tweak case in
  let b = Campaign.run_case ~tweak case in
  (match a.Campaign.oc_failure with
  | Some (Campaign.Leak _) -> ()
  | Some f ->
      Alcotest.failf "expected a leak, got %s" (Campaign.failure_to_string f)
  | None -> Alcotest.fail "expected a leak, case passed");
  let ja =
    match a.Campaign.oc_flight with
    | Some j -> j
    | None -> Alcotest.fail "failing case produced no flight dump"
  in
  let jb =
    match b.Campaign.oc_flight with
    | Some j -> j
    | None -> Alcotest.fail "replay produced no flight dump"
  in
  Alcotest.(check string) "replayed dump is byte-identical"
    (Json.to_string ja) (Json.to_string jb);
  let d =
    match Flight.of_json ja with
    | Ok d -> d
    | Error e -> Alcotest.failf "campaign dump rejected: %s" e
  in
  let all = List.concat_map (fun site -> Flight.events d ~site) (Flight.sites d) in
  Alcotest.(check bool) "dump is non-empty" true (all <> []);
  Alcotest.(check bool) "the drops behind the leak are in the dump" true
    (List.exists (fun e -> e.Flight.ev_kind = Flight.Drop) all)

let test_recorder_schedule_neutral () =
  (* Turning the recorder off must not perturb the run: same simulated
     clock, same counters. Only tracer.aborted_spans may differ — it is
     written by the failure-time dump itself, which the off run never
     takes. *)
  let case, tweak = lost_trace_case () in
  let on = Campaign.run_case ~tweak case in
  let off =
    Campaign.run_case
      ~tweak:(fun c -> { (tweak c) with Config.flight_capacity = 0 })
      case
  in
  Alcotest.(check bool) "recorder off: no dump" true
    (off.Campaign.oc_flight = None);
  Alcotest.(check (float 0.)) "same simulated clock" on.Campaign.oc_sim_seconds
    off.Campaign.oc_sim_seconds;
  let strip = List.filter (fun (k, _) -> k <> "tracer.aborted_spans") in
  Alcotest.(check (list (pair string int)))
    "event-identical counters"
    (strip on.Campaign.oc_counters)
    (strip off.Campaign.oc_counters)

let () =
  Alcotest.run "flight"
    [
      ( "ring",
        [
          Alcotest.test_case "record and decode" `Quick test_record_decode;
          Alcotest.test_case "eviction keeps the newest" `Quick
            test_eviction_keeps_newest;
          Alcotest.test_case "payload clamp" `Quick test_payload_clamp;
        ] );
      ( "round_trip",
        [
          Alcotest.test_case "random dumps re-serialize byte-identically"
            `Quick test_random_round_trip;
        ] );
      ( "rejection",
        [ Alcotest.test_case "malformed documents" `Quick test_rejections ] );
      ( "engine",
        [
          Alcotest.test_case "fig1 dump round trip" `Quick
            test_engine_dump_round_trip;
          Alcotest.test_case "dump aborts open spans" `Quick
            test_dump_aborts_open_spans;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "failure dumps a deterministic flight" `Quick
            test_campaign_failure_dumps_flight;
          Alcotest.test_case "recorder is schedule-neutral" `Quick
            test_recorder_schedule_neutral;
        ] );
    ]
