(* Sharded-engine determinism and the Event_queue heap laws.

   The qcheck properties pin the batch/window primitives the sharded
   scheduler leans on: [push_batch] must equal a fold of [push] (list
   order decides tie-break sequence numbers), [pop_until] must drain
   exactly the [<= bound] prefix in (time, insertion) order, and a
   [pop_nth] deviation must leave every other event's position and
   tie-break order intact — including through a later [pop_until].

   The engine tests then run fig2 on the sharded scheduler with one
   and two worker domains: two-plus shards trace inside the same
   window, so domains=2 genuinely runs [Local_trace.compute] on
   concurrent domains, and the resulting artifacts must still be
   byte-identical with the single-domain run. *)

open Dgc_simcore
open Dgc_rts
open Dgc_core
open Dgc_workload
module Tel = Dgc_telemetry

(* --- Event_queue laws --------------------------------------------------- *)

let drain q =
  let rec go acc =
    match Event_queue.pop q with
    | None -> List.rev acc
    | Some e -> go (e :: acc)
  in
  go []

(* Times from a tiny range so ties are the common case, payload = list
   index so insertion order is observable. *)
let events_of times =
  List.mapi (fun i t -> (Sim_time.of_millis (float_of_int t), i)) times

(* The reference model: a stable sort by time is exactly "earliest
   first, ties in insertion order". *)
let model evs =
  List.stable_sort (fun (a, _) (b, _) -> Sim_time.compare a b) evs

let times_arb = QCheck.(list_of_size Gen.(0 -- 40) (int_bound 4))

let prop_push_batch_is_fold =
  QCheck.Test.make ~count:500 ~name:"push_batch = fold push (tie-break)"
    times_arb (fun times ->
      let evs = events_of times in
      let q1 = Event_queue.create () in
      let q2 = Event_queue.create () in
      Event_queue.push_batch q1 evs;
      List.iter (fun (at, p) -> Event_queue.push q2 ~at p) evs;
      drain q1 = drain q2)

let prop_drain_is_stable_sort =
  QCheck.Test.make ~count:500 ~name:"drain = stable sort by time"
    times_arb (fun times ->
      let evs = events_of times in
      let q = Event_queue.create () in
      Event_queue.push_batch q evs;
      drain q = model evs)

let prop_pop_until_splits =
  QCheck.Test.make ~count:500 ~name:"pop_until drains the <= bound prefix"
    QCheck.(pair times_arb (int_bound 4))
    (fun (times, b) ->
      let bound = Sim_time.of_millis (float_of_int b) in
      let evs = events_of times in
      let q = Event_queue.create () in
      Event_queue.push_batch q evs;
      let window = Event_queue.pop_until q bound in
      let rest = drain q in
      let m = model evs in
      window = List.filter (fun (t, _) -> Sim_time.compare t bound <= 0) m
      && rest = List.filter (fun (t, _) -> Sim_time.compare t bound > 0) m)

let prop_pop_nth_preserves_order =
  QCheck.Test.make ~count:500
    ~name:"pop_nth removes nth; survivors keep order through pop_until"
    QCheck.(triple times_arb (int_bound 45) (int_bound 4))
    (fun (times, n, b) ->
      let bound = Sim_time.of_millis (float_of_int b) in
      let evs = events_of times in
      let q = Event_queue.create () in
      Event_queue.push_batch q evs;
      let m = model evs in
      match Event_queue.pop_nth q n with
      | None -> n >= List.length m && drain q = m
      | Some e ->
          let m' = List.filteri (fun i _ -> i <> n) m in
          e = List.nth m n
          && Event_queue.pop_until q bound
             = List.filter (fun (t, _) -> Sim_time.compare t bound <= 0) m'
          && drain q
             = List.filter (fun (t, _) -> Sim_time.compare t bound > 0) m')

(* --- sharded engine ----------------------------------------------------- *)

(* Mirrors the CLI's det surface: the scenario config with the fixed
   4-shard logical timeline and a caller-chosen worker count. *)
let sharded_cfg domains =
  {
    Config.default with
    Config.delta = 3;
    threshold2 = 6;
    threshold_bump = 4;
    trace_duration = Sim_time.zero;
    shards = 4;
    domains;
  }

let run_fig2 domains =
  let f = Scenario.fig2 ~cfg:(sharded_cfg domains) () in
  let sim = f.Scenario.f2_sim in
  let eng = sim.Sim.eng in
  Sim.start sim;
  Sim.run_rounds sim 6;
  let counters = Metrics.counters (Engine.merged_metrics eng) in
  let stats = Engine.shard_stats eng in
  let artifact =
    Tel.Run_artifact.make ~name:"shard-test"
      ~sim_seconds:(Sim_time.to_seconds (Engine.now eng))
      ~series:(Engine.merged_series eng)
      (Engine.merged_metrics eng)
  in
  let rendered = Tel.Json.to_string artifact in
  Engine.teardown eng;
  (counters, stats, rendered)

let test_two_shards_concurrent () =
  let counters, stats, _ = run_fig2 2 in
  let windows, xmsgs, _ =
    match stats with
    | Some s -> s
    | None -> Alcotest.fail "engine not sharded"
  in
  Alcotest.(check bool) "windows ran" true (windows > 0);
  Alcotest.(check int) "deliveries stay on the coordinator" 0 xmsgs;
  let traces =
    match List.assoc_opt "gc.local_traces" counters with
    | Some n -> n
    | None -> Alcotest.fail "gc.local_traces counter missing"
  in
  (* fig2 spans three sites on distinct shards, so every synchronized
     tick window traces at least two shards concurrently. *)
  Alcotest.(check bool) "several shards traced" true (traces >= 2)

let test_domains_equal () =
  let c1, s1, a1 = run_fig2 1 in
  let c2, s2, a2 = run_fig2 2 in
  Alcotest.(check bool) "shard stats equal" true (s1 = s2);
  Alcotest.(check bool) "counters equal" true (c1 = c2);
  Alcotest.(check string) "artifacts byte-identical" a1 a2

let () =
  Alcotest.run "shard"
    [
      ( "event_queue laws",
        List.map
          (fun t -> QCheck_alcotest.to_alcotest t)
          [
            prop_push_batch_is_fold;
            prop_drain_is_stable_sort;
            prop_pop_until_splits;
            prop_pop_nth_preserves_order;
          ] );
      ( "sharded engine",
        [
          Alcotest.test_case "two shards trace concurrently" `Quick
            test_two_shards_concurrent;
          Alcotest.test_case "domains 1 vs 2 artifacts identical" `Quick
            test_domains_equal;
        ] );
    ]
