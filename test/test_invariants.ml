(* The §6 invariants, checked as predicates over whole-system state:
   they hold after settling on every workload (including after racing
   mutators quiesce), and the checker detects seeded corruption. *)

open Dgc_prelude
open Dgc_simcore
open Dgc_heap
open Dgc_rts
open Dgc_core
open Dgc_workload

let s k = Site_id.of_int k

let cfg n seed =
  {
    Config.default with
    Config.n_sites = n;
    seed;
    delta = 3;
    threshold2 = 20 (* keep suspects alive long enough to inspect *);
    trace_interval = Sim_time.of_seconds 10.;
    trace_duration = Sim_time.zero;
  }

let check_clean eng label =
  match Invariants.strings (Invariants.check_all eng) with
  | [] -> ()
  | vs ->
      Alcotest.failf "%s: %d invariant violations, first: %s" label
        (List.length vs) (List.hd vs)

let test_holds_on_settled_workloads () =
  let workloads =
    [
      ( "garbage ring",
        fun eng ->
          ignore (Graph_gen.ring eng ~sites:[ s 0; s 1; s 2 ] ~per_site:2 ~rooted:false) );
      ( "live ring",
        fun eng ->
          ignore (Graph_gen.ring eng ~sites:[ s 0; s 1; s 2 ] ~per_site:2 ~rooted:true) );
      ( "clique",
        fun eng ->
          ignore (Graph_gen.clique eng ~sites:[ s 0; s 1; s 2; s 3 ] ~rooted:false) );
      ( "hypertext",
        fun eng ->
          ignore
            (Graph_gen.hypertext eng ~rng:(Rng.create ~seed:3) ~docs_per_site:2
               ~pages_per_doc:3 ~cross_links:10 ~rooted_frac:0.5) );
      ( "random",
        fun eng ->
          ignore
            (Graph_gen.random_graph eng ~rng:(Rng.create ~seed:4)
               ~objects_per_site:10 ~out_degree:1.5 ~remote_frac:0.4
               ~root_frac:0.15) );
    ]
  in
  List.iter
    (fun (name, build) ->
      let sim = Sim.make ~cfg:(cfg 4 1) () in
      build sim.Sim.eng;
      Scenario.settle sim ~rounds:10;
      check_clean sim.Sim.eng name)
    workloads

let test_holds_after_mutation_settles () =
  (* The fig5 mutation race, then enough rounds to re-converge: the
     invariants must be restored. *)
  let c = { (cfg 4 1) with Config.threshold2 = 6 } in
  let f, _, violation = Scenario.fig5_race ~cfg:c () in
  Alcotest.(check (option string)) "race safe" None violation;
  let sim = f.Scenario.f5_sim in
  Scenario.settle sim ~rounds:10;
  check_clean sim.Sim.eng "after fig5 race"

let test_holds_during_churn_pauses () =
  let c = { (cfg 4 7) with Config.threshold2 = 8 } in
  let sim = Sim.make ~cfg:c () in
  let eng = sim.Sim.eng in
  Array.iter (fun st -> ignore (Builder.root_obj eng st.Site.id)) (Engine.sites eng);
  ignore
    (Graph_gen.random_graph eng ~rng:(Rng.create ~seed:8) ~objects_per_site:8
       ~out_degree:1.2 ~remote_frac:0.3 ~root_frac:0.1);
  Sim.start sim;
  for burst = 1 to 3 do
    let churn =
      Churn.start sim ~rng:(Rng.create ~seed:(10 + burst)) ~agents:2
        ~mean_op_gap:(Sim_time.of_millis 300.)
    in
    Sim.run_for sim (Sim_time.of_minutes 1.);
    Churn.stop churn;
    Sim.run_for sim (Sim_time.of_seconds 20.);
    (* Settle the distances and back information, then audit. *)
    Scenario.settle sim ~rounds:8;
    check_clean eng (Printf.sprintf "after churn burst %d" burst)
  done

let test_detects_missing_inset_entry () =
  let sim = Sim.make ~cfg:(cfg 3 1) () in
  let eng = sim.Sim.eng in
  ignore (Graph_gen.ring eng ~sites:[ s 0; s 1; s 2 ] ~per_site:2 ~rooted:false);
  Scenario.settle sim ~rounds:8;
  (* Corrupt: blank out a suspected outref's inset. *)
  let corrupted = ref false in
  Array.iter
    (fun st ->
      Tables.iter_outrefs st.Site.tables (fun o ->
          if (not !corrupted) && not (Ioref.outref_clean o) then begin
            o.Ioref.or_inset <- [];
            corrupted := true
          end))
    (Engine.sites eng);
  Alcotest.(check bool) "corrupted something" true !corrupted;
  Alcotest.(check bool) "local safety violation detected" true
    (Invariants.local_safety eng <> [])

let test_detects_clean_inref_in_inset () =
  let sim = Sim.make ~cfg:(cfg 3 1) () in
  let eng = sim.Sim.eng in
  ignore (Graph_gen.ring eng ~sites:[ s 0; s 1; s 2 ] ~per_site:2 ~rooted:false);
  (* A clean inref to smuggle into an inset. *)
  let root = Builder.root_obj eng (s 0) in
  let live = Builder.obj eng (s 1) in
  Builder.link eng ~src:root ~dst:live;
  Scenario.settle sim ~rounds:8;
  let corrupted = ref false in
  Tables.iter_outrefs (Engine.site eng (s 1)).Site.tables (fun o ->
      if (not !corrupted) && not (Ioref.outref_clean o) then begin
        o.Ioref.or_inset <- live :: o.Ioref.or_inset;
        corrupted := true
      end);
  Alcotest.(check bool) "corrupted something" true !corrupted;
  Alcotest.(check bool) "auxiliary violation detected" true
    (Invariants.auxiliary eng <> [])

let test_detects_missing_source () =
  let sim = Sim.make ~cfg:(cfg 3 1) () in
  let eng = sim.Sim.eng in
  let objs = Graph_gen.ring eng ~sites:[ s 0; s 1; s 2 ] ~per_site:1 ~rooted:false in
  Scenario.settle sim ~rounds:8;
  (match objs with
  | o :: _ -> (
      match Tables.find_inref (Engine.site eng (Oid.site o)).Site.tables o with
      | Some ir -> ir.Ioref.ir_sources <- []
      | None -> Alcotest.fail "inref missing")
  | [] -> Alcotest.fail "no objects");
  Alcotest.(check bool) "remote safety violation detected" true
    (Invariants.remote_safety eng <> [])

let test_distance_sanity_on_live_graphs () =
  let sim = Sim.make ~cfg:(cfg 4 1) () in
  let eng = sim.Sim.eng in
  ignore
    (Graph_gen.chain eng ~sites:[ s 0; s 1; s 2; s 3 ] ~per_site:2 ~rooted:true);
  ignore (Graph_gen.ring eng ~sites:[ s 1; s 2 ] ~per_site:1 ~rooted:true);
  Scenario.settle sim ~rounds:10;
  Alcotest.(check (list string)) "estimates conservative" []
    (Invariants.strings (Invariants.distance_sanity eng))

let () =
  Alcotest.run "invariants"
    [
      ( "hold",
        [
          Alcotest.test_case "on settled workloads" `Quick
            test_holds_on_settled_workloads;
          Alcotest.test_case "after the fig5 race settles" `Quick
            test_holds_after_mutation_settles;
          Alcotest.test_case "between churn bursts" `Slow
            test_holds_during_churn_pauses;
          Alcotest.test_case "distance estimates conservative" `Quick
            test_distance_sanity_on_live_graphs;
        ] );
      ( "detect",
        [
          Alcotest.test_case "missing inset entry" `Quick
            test_detects_missing_inset_entry;
          Alcotest.test_case "clean inref in an inset" `Quick
            test_detects_clean_inref_in_inset;
          Alcotest.test_case "missing source" `Quick test_detects_missing_source;
        ] );
    ]
