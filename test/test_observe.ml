(* The observe library: snapshots and diffs, the watchdog, the
   why-not-collected auditor, plus the telemetry fixes that feed them
   (dropped span finishes, histogram bucket-mismatch reporting). *)

open Dgc_prelude
open Dgc_simcore
open Dgc_heap
open Dgc_rts
open Dgc_core
open Dgc_workload
module Tel = Dgc_telemetry
module Obs = Dgc_observe

let s k = Site_id.of_int k

let cfg_fast =
  {
    Config.default with
    Config.delta = 3;
    threshold2 = 6;
    threshold_bump = 4;
    trace_interval = Sim_time.of_seconds 10.;
    trace_jitter = Sim_time.of_seconds 1.;
    trace_duration = Sim_time.zero;
    latency = Latency.Fixed (Sim_time.of_millis 5.);
  }

(* --- tracer: silent span loss is now counted ---------------------------- *)

let test_tracer_dropped_finishes () =
  let t = Tel.Tracer.create () in
  let sp =
    Tel.Tracer.start_span t ~trace:"T0.0" ~name:"back_trace" ~site:0 ~at:0. []
  in
  Alcotest.(check int) "open" 1 (List.length (Tel.Tracer.open_spans t));
  Tel.Tracer.finish_span t sp ~at:1. [];
  Alcotest.(check int) "none open" 0 (List.length (Tel.Tracer.open_spans t));
  Alcotest.(check int) "nothing dropped yet" 0 (Tel.Tracer.dropped_finishes t);
  (* double finish and unknown id both count *)
  Tel.Tracer.finish_span t sp ~at:2. [];
  Tel.Tracer.finish_span t 9999 ~at:2. [];
  Alcotest.(check int) "dropped counted" 2 (Tel.Tracer.dropped_finishes t);
  (* and both surface in the chrome export's otherData *)
  let j = Tel.Tracer.to_chrome t in
  match Option.bind (Tel.Json.member "otherData" j) (Tel.Json.member "dropped_finishes") with
  | Some (Tel.Json.Int 2) -> ()
  | _ -> Alcotest.fail "dropped_finishes missing from chrome otherData"

(* --- metrics: ?buckets disagreement is reported ------------------------- *)

let test_metrics_bucket_mismatch_callback () =
  let m = Metrics.create () in
  let complaints = ref [] in
  Metrics.set_on_bucket_mismatch m (fun msg -> complaints := msg :: !complaints);
  Metrics.hist_observe m ~buckets:[| 1.; 2.; 4. |] "h" 1.5;
  Metrics.hist_observe m ~buckets:[| 1.; 2.; 4. |] "h" 2.5;
  Alcotest.(check int) "same buckets fine" 0 (List.length !complaints);
  Metrics.hist_observe m ~buckets:[| 10.; 20. |] "h" 3.0;
  Alcotest.(check int) "mismatch reported" 1 (List.length !complaints);
  (* the observation itself still lands in the original histogram *)
  match Metrics.hist_stats m "h" with
  | Some st -> Alcotest.(check int) "all observed" 3 st.Metrics.n
  | None -> Alcotest.fail "histogram lost"

let test_metrics_bucket_mismatch_raises_under_check_step () =
  let eng =
    Engine.create { cfg_fast with Config.check_level = Config.Check_step }
  in
  let m = Engine.metrics eng in
  Metrics.hist_observe m ~buckets:[| 1.; 2. |] "h" 1.0;
  (* The message must name BOTH bucket specs: a report that does not
     say which registration conflicted cannot be acted on. *)
  Alcotest.check_raises "strict mode raises"
    (Engine.Metrics_bucket_mismatch
       "histogram \"h\": ?buckets disagrees with existing bounds (given \
        [1; 2; 3] vs [1; 2] in use); keeping the original")
    (fun () -> Metrics.hist_observe m ~buckets:[| 1.; 2.; 3. |] "h" 1.0)

let test_metrics_bucket_mismatch_warns_in_journal () =
  let eng = Engine.create cfg_fast in
  let j = Journal.create ~capacity:32 () in
  Engine.attach_journal eng j;
  let m = Engine.metrics eng in
  Metrics.hist_observe m ~buckets:[| 1.; 2. |] "h" 1.0;
  Metrics.hist_observe m ~buckets:[| 1.; 2.; 3. |] "h" 1.0;
  let warns = Journal.entries ~cat:"metrics" ~min_level:Journal.Warn j in
  Alcotest.(check bool) "warned" true (warns <> [])

(* --- snapshots ---------------------------------------------------------- *)

let test_snapshot_and_diff () =
  let f = Scenario.fig1 ~cfg:cfg_fast () in
  let sim = f.Scenario.f1_sim in
  Scenario.settle sim ~rounds:2;
  let before = Obs.Snapshot.take sim.Sim.col in
  Alcotest.(check int) "three sites" 3 (List.length before.Obs.Snapshot.sites);
  let q =
    List.find
      (fun sv -> Site_id.equal sv.Obs.Snapshot.sv_site (Oid.site f.Scenario.f1_f))
      before.Obs.Snapshot.sites
  in
  Alcotest.(check bool) "Q has inrefs" true (q.Obs.Snapshot.sv_inrefs <> []);
  (match Obs.Snapshot.to_json before with
  | Tel.Json.Obj fields ->
      Alcotest.(check bool) "schema tagged" true
        (List.assoc_opt "schema" fields = Some (Tel.Json.Str "dgc.snapshot/1"))
  | _ -> Alcotest.fail "snapshot json not an object");
  Alcotest.(check int) "no self-diff" 0
    (List.length (Obs.Snapshot.diff before before));
  Sim.start sim;
  ignore (Sim.collect_all sim ~max_rounds:30 ());
  let after = Obs.Snapshot.take sim.Sim.col in
  let changes = Obs.Snapshot.diff before after in
  Alcotest.(check bool) "collection changed the state" true (changes <> []);
  (* the f-g cycle died: object counts changed at Q and R *)
  Alcotest.(check bool) "object counts among the changes" true
    (List.exists (fun c -> c.Obs.Snapshot.ch_what = "objects") changes)

(* --- watchdog ----------------------------------------------------------- *)

(* A slack §4.7 timeout (100s) plus a crash mid-trace: the reply can
   never arrive and the timeout is too far out to save the trace, so
   it sits outcome-less. A watchdog with a deadline below the timeout
   (stuck_factor 0.3 -> 30s) must flag it long before the timeout
   would. *)
let test_watchdog_flags_stuck_trace () =
  let cfg = { cfg_fast with Config.back_call_timeout = Sim_time.of_seconds 100. } in
  let sim = Sim.make ~cfg () in
  let eng = sim.Sim.eng in
  ignore (Graph_gen.ring eng ~sites:[ s 0; s 1 ] ~per_site:1 ~rooted:false);
  Scenario.settle sim ~rounds:8;
  let wd = Obs.Watchdog.attach ~stuck_factor:0.3 sim.Sim.col in
  let started = ref None in
  Array.iter
    (fun st ->
      Tables.iter_outrefs st.Site.tables (fun o ->
          if !started = None && not (Ioref.outref_clean o) then
            started := Collector.start_back_trace sim.Sim.col st.Site.id o.Ioref.or_target))
    (Engine.sites eng);
  Alcotest.(check bool) "trace started" true (!started <> None);
  (* crash every site: frames freeze open, no outcome can ever land *)
  Array.iter (fun st -> Engine.crash eng st.Site.id) (Engine.sites eng);
  Engine.run_for eng (Sim_time.of_seconds 60.);
  let alerts = Obs.Watchdog.check_now wd in
  ignore alerts;
  let kinds = List.map fst (Obs.Watchdog.alert_counts wd) in
  Alcotest.(check bool) "stuck_trace alert" true (List.mem "stuck_trace" kinds);
  Alcotest.(check bool) "watchdog counter bumped" true
    (Metrics.get (Engine.metrics eng) "watchdog.stuck_trace" > 0);
  (* alerts are deduplicated per subject *)
  let n = List.length (Obs.Watchdog.alerts wd) in
  ignore (Obs.Watchdog.check_now wd);
  Alcotest.(check int) "no duplicate alerts" n
    (List.length (Obs.Watchdog.alerts wd))

(* --- audit -------------------------------------------------------------- *)

let test_audit_clean_run_has_no_components () =
  let f = Scenario.fig1 ~cfg:cfg_fast () in
  let sim = f.Scenario.f1_sim in
  Engine.attach_tracer sim.Sim.eng (Tel.Tracer.create ());
  Sim.start sim;
  ignore (Sim.collect_all sim ~max_rounds:30 ());
  let rp = Obs.Audit.run sim.Sim.col in
  Alcotest.(check int) "no garbage" 0 rp.Obs.Audit.rp_garbage_objects;
  Alcotest.(check (list string)) "strict ok" [] (Obs.Audit.strict_failures rp);
  (* the collected cycle left a finished back trace: critical paths exist *)
  Alcotest.(check bool) "critical path analyzed" true
    (rp.Obs.Audit.rp_paths <> []);
  List.iter
    (fun cp ->
      Alcotest.(check bool) "positive path time" true
        (cp.Obs.Audit.cp_total_ms > 0.))
    rp.Obs.Audit.rp_paths;
  Alcotest.(check bool) "phase breakdown present" true
    (rp.Obs.Audit.rp_phases <> [])

let test_audit_not_triggered_before_any_trace () =
  let f = Scenario.fig1 ~cfg:cfg_fast () in
  let sim = f.Scenario.f1_sim in
  Engine.attach_tracer sim.Sim.eng (Tel.Tracer.create ());
  (* settle distances but never start the schedule: the f-g cycle
     survives with no trace having touched it *)
  Scenario.settle sim ~rounds:3;
  let rp = Obs.Audit.run sim.Sim.col in
  Alcotest.(check bool) "garbage present" true (rp.Obs.Audit.rp_garbage_objects > 0);
  let cycle =
    List.find
      (fun c -> c.Obs.Audit.co_cross_site)
      rp.Obs.Audit.rp_components
  in
  (match cycle.Obs.Audit.co_verdict with
  | Obs.Audit.Not_suspected | Obs.Audit.Suspected_not_triggered -> ()
  | v -> Alcotest.failf "unexpected verdict %s" (Obs.Audit.verdict_name v));
  Alcotest.(check bool) "has evidence" true (cycle.Obs.Audit.co_evidence <> []);
  Alcotest.(check (list string)) "explained, so strict ok" []
    (Obs.Audit.strict_failures rp)

let test_audit_json_shape () =
  let f = Scenario.fig1 ~cfg:cfg_fast () in
  let sim = f.Scenario.f1_sim in
  Scenario.settle sim ~rounds:3;
  let rp = Obs.Audit.run sim.Sim.col in
  let j = Obs.Audit.to_json rp in
  (match Option.bind (Tel.Json.member "schema" j) Tel.Json.to_str_opt with
  | Some "dgc.audit/1" -> ()
  | _ -> Alcotest.fail "audit schema tag");
  (* and it embeds as a run artifact's audit section *)
  let art =
    Tel.Run_artifact.make ~name:"t" ~sim_seconds:1.0 ~audit:j
      (Engine.metrics sim.Sim.eng)
  in
  (match Tel.Run_artifact.validate art with
  | Ok () -> ()
  | Error e -> Alcotest.failf "artifact with audit invalid: %s" e);
  Alcotest.(check bool) "audit section readable" true
    (Tel.Run_artifact.audit_section art <> None)

let () =
  Alcotest.run "observe"
    [
      ( "telemetry-fixes",
        [
          Alcotest.test_case "dropped finishes counted" `Quick
            test_tracer_dropped_finishes;
          Alcotest.test_case "bucket mismatch callback" `Quick
            test_metrics_bucket_mismatch_callback;
          Alcotest.test_case "bucket mismatch raises under Check_step" `Quick
            test_metrics_bucket_mismatch_raises_under_check_step;
          Alcotest.test_case "bucket mismatch warns in journal" `Quick
            test_metrics_bucket_mismatch_warns_in_journal;
        ] );
      ( "snapshot",
        [ Alcotest.test_case "take and diff" `Quick test_snapshot_and_diff ] );
      ( "watchdog",
        [
          Alcotest.test_case "flags a stuck trace" `Quick
            test_watchdog_flags_stuck_trace;
        ] );
      ( "audit",
        [
          Alcotest.test_case "clean run: no components, paths analyzed" `Quick
            test_audit_clean_run_has_no_components;
          Alcotest.test_case "untraced garbage explained" `Quick
            test_audit_not_triggered_before_any_trace;
          Alcotest.test_case "json + artifact embedding" `Quick
            test_audit_json_shape;
        ] );
    ]
