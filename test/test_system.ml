(* End-to-end system tests: randomized mutator churn under a running
   collector with the oracle asserting safety at every sweep, then
   completeness once mutation stops; plus the hypertext workload from
   the paper's introduction. *)

open Dgc_prelude
open Dgc_simcore
open Dgc_heap
open Dgc_rts
open Dgc_core
open Dgc_workload

let cfg ~seed ~n_sites ~windowed ~drop =
  {
    Config.default with
    Config.n_sites;
    seed;
    delta = 3;
    threshold2 = 6;
    threshold_bump = 4;
    trace_interval = Sim_time.of_seconds 10.;
    trace_jitter = Sim_time.of_seconds 1.;
    trace_duration =
      (if windowed then Sim_time.of_seconds 1. else Sim_time.zero);
    latency = Latency.Uniform (Sim_time.of_millis 1., Sim_time.of_millis 20.);
    ext_drop = drop;
    back_call_timeout = Sim_time.of_seconds 3.;
    visited_ttl = Sim_time.of_seconds 8.;
    oracle_checks = true;
  }

(* One full scenario: seed structure, churn for a while (safety asserted
   continuously by the oracle), stop mutation, then require complete
   collection and consistent tables. *)
let churn_scenario ~seed ~windowed ~drop () =
  let c = cfg ~seed ~n_sites:4 ~windowed ~drop in
  let sim = Sim.make ~cfg:c () in
  let eng = sim.Sim.eng in
  let rng = Rng.create ~seed:(seed + 1) in
  ignore
    (Graph_gen.random_graph eng ~rng ~objects_per_site:12 ~out_degree:1.5
       ~remote_frac:0.3 ~root_frac:0.1);
  (* Make sure every site has at least one persistent root so agents
     can always re-anchor. *)
  Array.iter
    (fun s ->
      if Heap.persistent_roots s.Site.heap = [] then
        ignore (Builder.root_obj eng s.Site.id))
    (Engine.sites eng)
  [@warning "-26"];
  let churn =
    Churn.start sim ~rng:(Rng.create ~seed:(seed + 2)) ~agents:3
      ~mean_op_gap:(Sim_time.of_millis 500.)
  in
  Sim.start sim;
  (* Mutate under collection for a stretch; oracle checks run at every
     sweep and raise on any unsafe free. *)
  Sim.run_for sim (Sim_time.of_minutes 4.);
  Alcotest.(check bool) "churn performed work" true (Churn.ops_done churn > 50);
  Churn.stop churn;
  (* Let in-flight operations land, then demand completeness. *)
  Sim.run_for sim (Sim_time.of_seconds 30.);
  let ok = Sim.collect_all sim ~max_rounds:60 () in
  if not ok then
    Alcotest.failf "uncollected garbage after churn: %d objects"
      (Dgc_oracle.Oracle.garbage_count eng);
  Alcotest.(check (list string)) "tables consistent at quiescence" []
    (Dgc_oracle.Oracle.table_violations eng)

let test_churn_atomic () = churn_scenario ~seed:100 ~windowed:false ~drop:0. ()
let test_churn_windowed () = churn_scenario ~seed:200 ~windowed:true ~drop:0. ()
let test_churn_lossy () = churn_scenario ~seed:300 ~windowed:true ~drop:0.2 ()

let prop_churn_many_seeds =
  QCheck2.Test.make ~name:"churn is safe and complete across seeds" ~count:8
    ~print:string_of_int
    QCheck2.Gen.(int_range 1 10_000)
    (fun seed ->
      churn_scenario ~seed ~windowed:(seed mod 2 = 0)
        ~drop:(if seed mod 3 = 0 then 0.1 else 0.)
        ();
      true)

(* --- hypertext (the intro's motivating workload) ----------------------- *)

let test_hypertext_cycles_collected () =
  (* Cross links can accidentally root every document; scan seeds for a
     configuration that leaves real cyclic garbage. *)
  let rec build seed =
    if seed > 40 then Alcotest.fail "no seed produced garbage"
    else begin
      let c = cfg ~seed ~n_sites:5 ~windowed:false ~drop:0. in
      let sim = Sim.make ~cfg:c () in
      let rng = Rng.create ~seed:(seed + 1) in
      let garbage =
        Graph_gen.hypertext sim.Sim.eng ~rng ~docs_per_site:3 ~pages_per_doc:4
          ~cross_links:15 ~rooted_frac:0.5
      in
      if garbage = [] then build (seed + 1) else (sim, garbage)
    end
  in
  let sim, garbage = build 7 in
  let eng = sim.Sim.eng in
  Alcotest.(check bool) "workload produced cyclic garbage" true
    (List.length garbage > 0);
  Alcotest.(check int) "oracle agrees on garbage count"
    (List.length garbage)
    (Dgc_oracle.Oracle.garbage_count eng);
  Sim.start sim;
  let ok = Sim.collect_all sim ~max_rounds:60 () in
  Alcotest.(check bool) "all hypertext garbage collected" true ok;
  (* live documents intact *)
  Alcotest.(check (list string)) "tables consistent" []
    (Dgc_oracle.Oracle.table_violations eng)

(* --- locality under load ------------------------------------------------ *)

let test_trace_participants_within_garbage_sites () =
  (* For every Garbage-outcome back trace, the participant set is
     contained in the sites that owned garbage when the trace ran. With
     a static garbage set, that is exactly the cycle's sites. *)
  let c = cfg ~seed:11 ~n_sites:6 ~windowed:false ~drop:0. in
  let sim = Sim.make ~cfg:c () in
  let eng = sim.Sim.eng in
  (* Cycle on sites 1-3 only; sites 0, 4, 5 hold unrelated live data. *)
  let cycle_sites = [ Site_id.of_int 1; Site_id.of_int 2; Site_id.of_int 3 ] in
  ignore (Graph_gen.ring eng ~sites:cycle_sites ~per_site:2 ~rooted:false);
  ignore
    (Graph_gen.ring eng
       ~sites:[ Site_id.of_int 0; Site_id.of_int 4; Site_id.of_int 5 ]
       ~per_site:2 ~rooted:true);
  Sim.start sim;
  let ok = Sim.collect_all sim ~max_rounds:40 () in
  Alcotest.(check bool) "collected" true ok;
  let allowed = Site_id.set_of_list cycle_sites in
  List.iter
    (fun (_, st) ->
      match st.Back_trace.ts_outcome with
      | Some (Verdict.Garbage, _) ->
          Alcotest.(check bool) "participants within the cycle" true
            (Site_id.Set.subset st.Back_trace.ts_participants allowed)
      | _ -> ())
    (Back_trace.stats (Collector.back sim.Sim.col))

(* Verdict safety as a direct property: whatever traces conclude, the
   set of flagged inrefs only ever names oracle-certified garbage. *)
let prop_flagged_only_garbage =
  QCheck2.Test.make ~name:"flagged inrefs are oracle garbage" ~count:25
    ~print:string_of_int
    QCheck2.Gen.(int_range 1 100_000)
    (fun seed ->
      let c = cfg ~seed ~n_sites:4 ~windowed:false ~drop:0. in
      let sim = Sim.make ~cfg:c () in
      let eng = sim.Sim.eng in
      ignore
        (Graph_gen.random_graph eng ~rng:(Rng.create ~seed:(seed + 1))
           ~objects_per_site:10 ~out_degree:1.6 ~remote_frac:0.4
           ~root_frac:0.12);
      Scenario.settle sim ~rounds:9;
      let garbage = Dgc_oracle.Oracle.garbage_set eng in
      (* Fire a trace from every suspected outref in the system. *)
      Array.iter
        (fun st ->
          Tables.iter_outrefs st.Site.tables (fun o ->
              if not (Ioref.outref_clean o) then
                ignore
                  (Collector.start_back_trace sim.Sim.col st.Site.id
                     o.Ioref.or_target)))
        (Engine.sites eng);
      Sim.run_for sim (Sim_time.of_seconds 30.);
      let ok = ref true in
      Array.iter
        (fun st ->
          Tables.iter_inrefs st.Site.tables (fun ir ->
              if
                ir.Ioref.ir_flagged
                && not (Oid.Set.mem ir.Ioref.ir_target garbage)
              then ok := false))
        (Engine.sites eng);
      !ok)

(* --- long-lived accumulation ------------------------------------------- *)

let test_repeated_garbage_waves () =
  (* Cycles created in waves keep being collected; storage does not
     accumulate (the paper's long-lived-system motivation). *)
  let c = cfg ~seed:21 ~n_sites:3 ~windowed:false ~drop:0. in
  let sim = Sim.make ~cfg:c () in
  let eng = sim.Sim.eng in
  let sites = [ Site_id.of_int 0; Site_id.of_int 1; Site_id.of_int 2 ] in
  Sim.start sim;
  for wave = 1 to 5 do
    ignore (Graph_gen.ring eng ~sites ~per_site:2 ~rooted:false);
    let ok = Sim.collect_all sim ~max_rounds:40 () in
    Alcotest.(check bool)
      (Format.asprintf "wave %d collected" wave)
      true ok
  done;
  let total_objects =
    Array.fold_left
      (fun acc s -> acc + Heap.object_count s.Site.heap)
      0 (Engine.sites eng)
  in
  Alcotest.(check int) "no residual storage" 0 total_objects

(* --- soak ---------------------------------------------------------------- *)

let test_soak () =
  (* A long-lived 8-site system: half an hour of simulated time with
     continuous churn, periodic faults and windowed traces, the oracle
     watching every sweep. The paper's long-lived-system motivation,
     end to end. *)
  let c =
    {
      (cfg ~seed:4242 ~n_sites:8 ~windowed:true ~drop:0.05) with
      Config.trace_interval = Sim_time.of_seconds 20.;
    }
  in
  let sim = Sim.make ~cfg:c () in
  let eng = sim.Sim.eng in
  let rng = Rng.create ~seed:4243 in
  Array.iter (fun st -> ignore (Builder.root_obj eng st.Site.id)) (Engine.sites eng);
  ignore
    (Graph_gen.hypertext eng ~rng ~docs_per_site:2 ~pages_per_doc:3
       ~cross_links:20 ~rooted_frac:0.6);
  let churn =
    Churn.start sim ~rng:(Rng.create ~seed:4244) ~agents:5
      ~mean_op_gap:(Sim_time.of_millis 250.)
  in
  Sim.start sim;
  for slot = 1 to 15 do
    Sim.run_for sim (Sim_time.of_minutes 2.);
    (* periodic fault churn *)
    (match slot mod 5 with
    | 1 -> Engine.crash eng (Site_id.of_int (slot mod 8))
    | 2 -> Engine.recover eng (Site_id.of_int ((slot - 1) mod 8))
    | 3 ->
        Engine.partition eng
          [ List.init 4 Site_id.of_int;
            List.init 4 (fun i -> Site_id.of_int (i + 4)) ]
    | 4 -> Engine.heal eng
    | _ -> ())
  done;
  (* restore and converge *)
  Engine.heal eng;
  Array.iteri
    (fun i st -> if st.Site.crashed then Engine.recover eng (Site_id.of_int i))
    (Engine.sites eng);
  Churn.stop churn;
  Sim.run_for sim (Sim_time.of_minutes 2.);
  Alcotest.(check bool) "plenty of work happened" true
    (Churn.ops_done churn > 2000);
  let ok = Sim.collect_all sim ~max_rounds:80 () in
  if not ok then
    Alcotest.failf "soak left %d garbage objects"
      (Dgc_oracle.Oracle.garbage_count eng);
  Alcotest.(check (list string)) "tables consistent" []
    (Dgc_oracle.Oracle.table_violations eng);
  Scenario.settle sim ~rounds:6;
  Alcotest.(check (list string)) "invariants hold" []
    (Dgc_core.Invariants.strings (Dgc_core.Invariants.check_all eng))

let () =
  Alcotest.run "system"
    [
      ( "churn",
        [
          Alcotest.test_case "atomic traces" `Slow test_churn_atomic;
          Alcotest.test_case "windowed traces" `Slow test_churn_windowed;
          Alcotest.test_case "20% message loss" `Slow test_churn_lossy;
          QCheck_alcotest.to_alcotest ~long:true prop_churn_many_seeds;
        ] );
      ( "workloads",
        [
          Alcotest.test_case "hypertext cycles" `Slow
            test_hypertext_cycles_collected;
          Alcotest.test_case "locality of garbage traces" `Quick
            test_trace_participants_within_garbage_sites;
          QCheck_alcotest.to_alcotest prop_flagged_only_garbage;
          Alcotest.test_case "repeated waves, no accumulation" `Slow
            test_repeated_garbage_waves;
        ] );
      ("soak", [ Alcotest.test_case "30-minute fault-ridden soak" `Slow test_soak ]);
    ]
