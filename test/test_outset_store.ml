(* The hash-consed outset store (§5.2): canonical sharing, memoized
   unions, the ablation toggle, and set-algebra properties. *)

open Dgc_prelude
open Dgc_heap
open Dgc_core

let oid i = Oid.make ~site:(Site_id.of_int 1) ~index:i

let test_empty_and_singleton () =
  let st = Outset_store.create () in
  let e = Outset_store.empty st in
  Alcotest.(check bool) "empty is empty" true (Outset_store.is_empty_id st e);
  Alcotest.(check int) "empty cardinal" 0 (Outset_store.cardinal st e);
  let s1 = Outset_store.singleton st (oid 1) in
  Alcotest.(check int) "singleton cardinal" 1 (Outset_store.cardinal st s1);
  let s1' = Outset_store.singleton st (oid 1) in
  Alcotest.(check bool) "singletons hash-cons" true (s1 = s1')

let test_union_basics () =
  let st = Outset_store.create () in
  let a = Outset_store.singleton st (oid 1) in
  let b = Outset_store.singleton st (oid 2) in
  let ab = Outset_store.union st a b in
  Alcotest.(check (list string)) "sorted elements"
    [ "S1/o1"; "S1/o2" ]
    (List.map Oid.to_string (Outset_store.elements st ab));
  Alcotest.(check bool) "union with empty is identity" true
    (Outset_store.union st ab (Outset_store.empty st) = ab);
  Alcotest.(check bool) "union idempotent" true (Outset_store.union st ab ab = ab);
  Alcotest.(check bool) "union commutative (same id)" true
    (Outset_store.union st a b = Outset_store.union st b a)

let test_memoization () =
  let st = Outset_store.create () in
  let a = Outset_store.singleton st (oid 1) in
  let b = Outset_store.singleton st (oid 2) in
  ignore (Outset_store.union st a b);
  ignore (Outset_store.union st a b);
  ignore (Outset_store.union st b a);
  let s = Outset_store.stats st in
  Alcotest.(check int) "three union calls" 3 s.Outset_store.union_calls;
  Alcotest.(check int) "two were memo hits" 2 s.Outset_store.memo_hits

let test_memoize_off_same_results () =
  let with_memo = Outset_store.create ~memoize:true () in
  let without = Outset_store.create ~memoize:false () in
  let build st =
    let ids = List.init 6 (fun i -> Outset_store.singleton st (oid i)) in
    let all =
      List.fold_left (fun acc x -> Outset_store.union st acc x)
        (Outset_store.empty st) ids
    in
    Outset_store.elements st all
  in
  Alcotest.(check (list string)) "identical results"
    (List.map Oid.to_string (build with_memo))
    (List.map Oid.to_string (build without));
  Alcotest.(check int) "no hits without memo" 0
    (Outset_store.stats without).Outset_store.memo_hits

let test_add () =
  let st = Outset_store.create () in
  let a = Outset_store.add st (Outset_store.empty st) (oid 9) in
  let b = Outset_store.add st a (oid 3) in
  Alcotest.(check (list string)) "add keeps order"
    [ "S1/o3"; "S1/o9" ]
    (List.map Oid.to_string (Outset_store.elements st b));
  Alcotest.(check bool) "re-adding is identity" true
    (Outset_store.add st b (oid 9) = b)

(* Property: union behaves exactly like set union. *)
let prop_union_is_set_union =
  QCheck2.Test.make ~name:"union equals Oid.Set union" ~count:300
    ~print:QCheck2.Print.(pair (list int) (list int))
    QCheck2.Gen.(pair (list_size (int_bound 12) (int_bound 20))
                   (list_size (int_bound 12) (int_bound 20)))
    (fun (xs, ys) ->
      let st = Outset_store.create () in
      let of_list l =
        List.fold_left (fun acc i -> Outset_store.add st acc (oid i))
          (Outset_store.empty st) l
      in
      let got =
        Outset_store.elements st (Outset_store.union st (of_list xs) (of_list ys))
      in
      let want =
        Oid.Set.elements
          (Oid.Set.union
             (Oid.Set.of_list (List.map oid xs))
             (Oid.Set.of_list (List.map oid ys)))
      in
      List.equal Oid.equal got want)

(* Property: equal sets always share one id (canonical form). *)
let prop_canonical =
  QCheck2.Test.make ~name:"equal sets share an id" ~count:200
    ~print:QCheck2.Print.(list int)
    QCheck2.Gen.(list_size (int_bound 10) (int_bound 15))
    (fun xs ->
      let st = Outset_store.create () in
      let of_list l =
        List.fold_left (fun acc i -> Outset_store.add st acc (oid i))
          (Outset_store.empty st) l
      in
      of_list xs = of_list (List.rev xs))

(* Property: union is idempotent, commutative and associative at the
   id level (canonical ids make set equality id equality). *)
let prop_set_algebra =
  QCheck2.Test.make ~name:"union idempotent/commutative/associative"
    ~count:200
    ~print:QCheck2.Print.(triple (list int) (list int) (list int))
    QCheck2.Gen.(
      triple
        (list_size (int_bound 8) (int_bound 15))
        (list_size (int_bound 8) (int_bound 15))
        (list_size (int_bound 8) (int_bound 15)))
    (fun (xs, ys, zs) ->
      let st = Outset_store.create () in
      let of_list l =
        List.fold_left
          (fun acc i -> Outset_store.add st acc (oid i))
          (Outset_store.empty st) l
      in
      let a = of_list xs and b = of_list ys and c = of_list zs in
      let u = Outset_store.union st in
      u a a = a && u a b = u b a && u (u a b) c = u a (u b c))

(* Property: an arbitrary union tree computes the same elements with
   the memo on and off (the §5.2 ablation invariant, randomized). *)
let prop_memo_ablation =
  QCheck2.Test.make ~name:"memo on/off identical on random unions"
    ~count:200
    ~print:QCheck2.Print.(list (list int))
    QCheck2.Gen.(list_size (int_bound 10) (list_size (int_bound 8) (int_bound 15)))
    (fun lists ->
      let run memoize =
        let st = Outset_store.create ~memoize () in
        let of_list l =
          List.fold_left
            (fun acc i -> Outset_store.add st acc (oid i))
            (Outset_store.empty st) l
        in
        let ids = List.map of_list lists in
        (* union every pair, then fold the lot together *)
        let pairs =
          List.concat_map (fun x -> List.map (fun y -> Outset_store.union st x y) ids)
            ids
        in
        let all =
          List.fold_left (Outset_store.union st) (Outset_store.empty st) pairs
        in
        ( Outset_store.elements st all,
          List.map (Outset_store.elements st) pairs )
      in
      let with_memo = run true and without = run false in
      with_memo = without)

let () =
  Alcotest.run "outset_store"
    [
      ( "unit",
        [
          Alcotest.test_case "empty and singleton" `Quick
            test_empty_and_singleton;
          Alcotest.test_case "union basics" `Quick test_union_basics;
          Alcotest.test_case "memoization" `Quick test_memoization;
          Alcotest.test_case "memoize toggle" `Quick
            test_memoize_off_same_results;
          Alcotest.test_case "add" `Quick test_add;
        ] );
      ( "properties",
        List.map (fun t -> QCheck_alcotest.to_alcotest t)
          [
            prop_union_is_set_union;
            prop_canonical;
            prop_set_algebra;
            prop_memo_ablation;
          ] );
    ]
