(* The chaos tier: fault plans as values, deterministic injection, the
   hardened Ext delivery (idempotent handlers, bounded retry with
   backoff), the campaign driver's ddmin shrinker, the committed
   regression corpus, and the differential comparison against the
   baseline collectors under identical fault plans. *)

open Dgc_prelude
open Dgc_simcore
open Dgc_rts
open Dgc_core
open Dgc_workload
open Dgc_chaos
module Json = Dgc_telemetry.Json
module Oracle = Dgc_oracle.Oracle
module Shrink = Dgc_analysis.Shrink

let s k = Site_id.of_int k

let cfg n =
  {
    Config.default with
    Config.n_sites = n;
    delta = 3;
    threshold2 = 6;
    threshold_bump = 4;
    trace_interval = Sim_time.of_seconds 10.;
    trace_jitter = Sim_time.of_seconds 1.;
    trace_duration = Sim_time.zero;
    latency = Latency.Fixed (Sim_time.of_millis 5.);
  }

(* --- plans: serialization ------------------------------------------------- *)

let all_kinds_plan =
  {
    Plan.events =
      [
        { Plan.at_ms = 0.; dur_ms = 500.; ev = Plan.Crash { site = 1 } };
        {
          Plan.at_ms = 10.;
          dur_ms = 200.;
          ev = Plan.Partition { groups = [ [ 0 ]; [ 1; 2 ] ] };
        };
        { Plan.at_ms = 20.; dur_ms = 100.; ev = Plan.Drop { p = 0.75 } };
        { Plan.at_ms = 30.; dur_ms = 50.; ev = Plan.Dup { p = 0.5 } };
        { Plan.at_ms = 40.; dur_ms = 25.; ev = Plan.Slow { factor = 8. } };
      ];
  }

let plan_str p = Json.to_string (Plan.to_json p)

let test_plan_roundtrip () =
  match Plan.of_string (plan_str all_kinds_plan) with
  | Error e -> Alcotest.fail e
  | Ok p ->
      Alcotest.(check string) "round-trip is the identity"
        (plan_str all_kinds_plan) (plan_str p);
      Alcotest.(check int) "all five kinds survive" 5 (Plan.length p)

let test_random_plan_roundtrip () =
  for seed = 1 to 20 do
    let rng = Rng.create ~seed in
    let p = Plan.random ~rng ~sites:4 ~horizon_ms:60_000. ~events:6 in
    Alcotest.(check int) "requested size" 6 (Plan.length p);
    match Plan.of_string (plan_str p) with
    | Error e -> Alcotest.fail e
    | Ok p' -> Alcotest.(check string) "round-trip" (plan_str p) (plan_str p')
  done

let test_plan_rejects_garbage () =
  let bad label text =
    match Plan.of_string text with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s: accepted" label
  in
  bad "wrong schema" {|{"schema":"dgc.run/1","events":[]}|};
  bad "unknown kind"
    {|{"schema":"dgc.plan/1","events":[{"kind":"meteor","at_ms":0,"dur_ms":1}]}|};
  bad "negative time"
    {|{"schema":"dgc.plan/1","events":[{"kind":"drop","at_ms":-5,"dur_ms":1,"p":0.5}]}|};
  bad "not json" "]["

(* --- injection determinism ------------------------------------------------ *)

let churn_case seed =
  {
    Campaign.cs_name = Printf.sprintf "churn-%d" seed;
    cs_workload = "churn";
    cs_seed = seed;
    cs_horizon_ms = 20_000.;
    cs_plan =
      Plan.random ~rng:(Rng.create ~seed) ~sites:5 ~horizon_ms:20_000.
        ~events:4;
  }

let test_injection_determinism () =
  let case = churn_case 42 in
  let a = Campaign.run_case case in
  let b = Campaign.run_case case in
  Alcotest.(check (list string)) "journals identical" a.Campaign.oc_journal
    b.Campaign.oc_journal;
  Alcotest.(check (list (pair string int)))
    "counters identical" a.Campaign.oc_counters b.Campaign.oc_counters;
  Alcotest.(check string) "artifacts bit-identical"
    (Json.to_string (Campaign.artifact a))
    (Json.to_string (Campaign.artifact b));
  Alcotest.(check bool) "faults actually injected" true
    (a.Campaign.oc_injected > 0);
  (match a.Campaign.oc_failure with
  | None -> ()
  | Some f -> Alcotest.fail (Campaign.failure_to_string f))

(* --- idempotent Ext delivery ---------------------------------------------- *)

(* A 2-site garbage ring with distances settled: one cross-site garbage
   component, ready to trace. *)
let ring_sim ?(timeout = 10.) ?(tweak = fun c -> c) () =
  let c =
    tweak
      { (cfg 2) with Config.back_call_timeout = Sim_time.of_seconds timeout }
  in
  let sim = Sim.make ~cfg:c () in
  ignore
    (Graph_gen.ring sim.Sim.eng ~sites:[ s 0; s 1 ] ~per_site:1 ~rooted:false);
  Scenario.settle sim ~rounds:8;
  sim

let start_any_trace sim =
  let started = ref None in
  Array.iter
    (fun st ->
      Tables.iter_outrefs st.Site.tables (fun o ->
          if !started = None && not (Ioref.outref_clean o) then
            started :=
              Collector.start_back_trace sim.Sim.col st.Site.id
                o.Ioref.or_target))
    (Engine.sites sim.Sim.eng);
  match !started with
  | Some tid -> tid
  | None -> Alcotest.fail "no dirty outref to trace"

let test_dup_everything_still_garbage () =
  (* Every collector message is delivered twice; the call memo, the
     per-frame reply dedup and the idempotent report handler must make
     the duplicates invisible. *)
  let sim = ring_sim ~tweak:(fun c -> { c with Config.ext_dup = 1.0 }) () in
  let outcome = ref None in
  Back_trace.on_outcome (Collector.back sim.Sim.col) (fun _ v _ ->
      outcome := Some v);
  ignore (start_any_trace sim);
  Sim.run_for sim (Sim_time.of_seconds 30.);
  (match !outcome with
  | Some v ->
      Alcotest.(check bool) "still concludes Garbage" true
        (Verdict.equal v Verdict.Garbage)
  | None -> Alcotest.fail "trace never completed");
  let m = Engine.metrics sim.Sim.eng in
  Alcotest.(check bool) "duplicates were injected" true
    (Metrics.get m "msg.duplicated" > 0);
  Alcotest.(check bool) "duplicate calls deduplicated" true
    (Metrics.get m "back.dup_call_ignored" + Metrics.get m "back.call_replayed"
    > 0);
  Alcotest.(check (list string)) "invariants clean" []
    (Invariants.strings (Invariants.check_all sim.Sim.eng))

let test_duplicate_report_is_noop () =
  let sim = ring_sim () in
  let outcome = ref None in
  Back_trace.on_outcome (Collector.back sim.Sim.col) (fun _ v _ ->
      outcome := Some v);
  let tid = start_any_trace sim in
  Sim.run_for sim (Sim_time.of_seconds 30.);
  Alcotest.(check bool) "trace concluded" true (!outcome <> None);
  let garbage0 = Oracle.garbage_count sim.Sim.eng in
  (* redeliver the outcome report to a participant, twice *)
  let back = Collector.back sim.Sim.col in
  for _ = 1 to 2 do
    Alcotest.(check bool) "report handled" true
      (Back_trace.handle_ext back (s 1) ~src:(s 0)
         (Back_trace.Back_report { trace = tid; outcome = Verdict.Garbage }))
  done;
  Sim.run_for sim (Sim_time.of_seconds 5.);
  Alcotest.(check int) "heap state unchanged" garbage0
    (Oracle.garbage_count sim.Sim.eng);
  Alcotest.(check (list string)) "invariants clean" []
    (Invariants.strings (Invariants.check_all sim.Sim.eng))

let fig_plan =
  {
    Plan.events =
      [
        { Plan.at_ms = 1_000.; dur_ms = 8_000.; ev = Plan.Drop { p = 0.4 } };
        { Plan.at_ms = 2_000.; dur_ms = 10_000.; ev = Plan.Dup { p = 0.6 } };
      ];
  }

let test_figs_safe_under_dup_drop_retry () =
  (* The acceptance bar: duplicated and dropped Ext messages, retries
     enabled (campaign default), over every figure scenario — safe
     throughout and complete after quiescence. *)
  List.iter
    (fun name ->
      let case =
        {
          Campaign.cs_name = name ^ "-harden";
          cs_workload = name;
          cs_seed = 5;
          cs_horizon_ms = 15_000.;
          cs_plan = fig_plan;
        }
      in
      let oc = Campaign.run_case case in
      match oc.Campaign.oc_failure with
      | None -> ()
      | Some f ->
          Alcotest.failf "%s: %s" name (Campaign.failure_to_string f))
    [ "fig1"; "fig2"; "fig3"; "fig4"; "fig5"; "fig6" ]

(* --- retry with backoff --------------------------------------------------- *)

let test_retry_backoff_schedule () =
  (* Permanent partition: the back call and all three retries are
     dropped. Attempt 0 times out at +10s; retries re-arm at
     10·2^k, so the Live give-up lands at +150s exactly. *)
  let sim =
    ring_sim
      ~tweak:(fun c -> { c with Config.retry_limit = 3; retry_backoff = 2. })
      ()
  in
  let eng = sim.Sim.eng in
  Engine.partition eng [ [ s 0 ]; [ s 1 ] ];
  let outcome = ref None in
  Back_trace.on_outcome (Collector.back sim.Sim.col) (fun _ v _ ->
      outcome := Some v);
  ignore (start_any_trace sim);
  let m = Engine.metrics eng in
  Sim.run_for sim (Sim_time.of_seconds 140.);
  Alcotest.(check int) "three retries spent" 3 (Metrics.get m "retry.back_call");
  Alcotest.(check bool) "still waiting at +140s" true (!outcome = None);
  Sim.run_for sim (Sim_time.of_seconds 20.);
  (match !outcome with
  | Some v ->
      Alcotest.(check bool) "gives up to Live after the last backoff" true
        (Verdict.equal v Verdict.Live)
  | None -> Alcotest.fail "no outcome by +160s");
  Alcotest.(check int) "exhaustion counted" 1 (Metrics.get m "retry.exhausted");
  Alcotest.(check bool) "garbage preserved (safety first)" true
    (Oracle.garbage_count eng > 0)

let test_retry_recovers_dropped_call () =
  (* The call is dropped by a transient partition; the first retry
     crosses the healed network and the trace still concludes Garbage —
     a single-shot caller would have timed out to Live. *)
  let sim =
    ring_sim ~timeout:5.
      ~tweak:(fun c -> { c with Config.retry_limit = 2; retry_backoff = 2. })
      ()
  in
  let eng = sim.Sim.eng in
  Engine.partition eng [ [ s 0 ]; [ s 1 ] ];
  let outcome = ref None in
  Back_trace.on_outcome (Collector.back sim.Sim.col) (fun _ v _ ->
      outcome := Some v);
  ignore (start_any_trace sim);
  Sim.run_for sim (Sim_time.of_seconds 2.);
  Engine.heal eng;
  Sim.run_for sim (Sim_time.of_seconds 30.);
  (match !outcome with
  | Some v ->
      Alcotest.(check bool) "retry rescued the verdict" true
        (Verdict.equal v Verdict.Garbage)
  | None -> Alcotest.fail "trace never completed");
  let m = Engine.metrics eng in
  Alcotest.(check bool) "a retry was used" true
    (Metrics.get m "retry.back_call" >= 1);
  Alcotest.(check int) "never exhausted" 0 (Metrics.get m "retry.exhausted")

let test_report_redundancy_counted () =
  (* With retries on, §4.5 reports are blindly re-sent on a backoff
     schedule (receivers are idempotent). *)
  let case =
    {
      Campaign.cs_name = "fig1-reports";
      cs_workload = "fig1";
      cs_seed = 3;
      cs_horizon_ms = 15_000.;
      cs_plan = Plan.empty;
    }
  in
  let oc = Campaign.run_case case in
  (match oc.Campaign.oc_failure with
  | None -> ()
  | Some f -> Alcotest.fail (Campaign.failure_to_string f));
  match List.assoc_opt "retry.back_report" oc.Campaign.oc_counters with
  | Some n when n > 0 -> ()
  | _ -> Alcotest.fail "no redundant reports were sent"

(* --- the shrinker --------------------------------------------------------- *)

let test_shrink_recovers_planted_pair () =
  (* Plant a "bug" that needs exactly events 1 and 4 of a six-event
     plan, using the same (index, rank) encoding Campaign.shrink_case
     feeds to ddmin; the shrinker must recover exactly that pair. *)
  let plan =
    Plan.random ~rng:(Rng.create ~seed:9) ~sites:4 ~horizon_ms:60_000.
      ~events:6
  in
  let reproduces devs =
    List.exists (fun (i, _) -> i = 1) devs
    && List.exists (fun (i, _) -> i = 4) devs
  in
  let initial = List.mapi (fun i _ -> (i, 1)) plan.Plan.events in
  let devs, replays = Shrink.minimize ~reproduces initial in
  Alcotest.(check (list (pair int int)))
    "exactly the planted pair"
    [ (1, 1); (4, 1) ]
    (List.sort compare devs);
  Alcotest.(check bool) "spent some replays" true (replays > 0)

let test_planted_bug_caught_and_shrunk () =
  (* Break the §6.1.1 transfer barrier and run the §6.4 race workload
     under a random plan: the oracle must catch the unsafe sweep and
     the shrinker must strip the (irrelevant) fault events down to a
     tiny reproducer. *)
  let tweak c = { c with Config.enable_transfer_barrier = false } in
  let summary =
    Campaign.run ~tweak ~workload:"race" ~seeds:[ 3 ] ~horizon_ms:30_000.
      ~events_per_plan:4 ()
  in
  match summary.Campaign.sm_failures with
  | [ (oc, shrunk, replays) ] ->
      (match oc.Campaign.oc_failure with
      | Some (Campaign.Safety _) -> ()
      | Some f ->
          Alcotest.failf "wrong failure kind: %s"
            (Campaign.failure_to_string f)
      | None -> assert false);
      Alcotest.(check bool) "shrunk to <= 3 fault events" true
        (Plan.length shrunk <= 3);
      Alcotest.(check bool) "shrinker replayed the case" true (replays > 0)
  | [] -> Alcotest.fail "planted safety bug was not caught"
  | _ -> Alcotest.fail "expected exactly one failing case"

(* --- differential: back tracing vs the baselines -------------------------- *)

let crash_uninvolved_site_plan =
  (* Site 2 holds no part of the cycle and is down for the whole run. *)
  {
    Plan.events =
      [ { Plan.at_ms = 0.; dur_ms = 600_000.; ev = Plan.Crash { site = 2 } } ];
  }

let diff_cfg () =
  { (cfg 3) with Config.oracle_checks = true; seed = 77 }

let test_differential_crashed_bystander () =
  (* The same plan against three collectors. Back tracing involves only
     the sites holding the cycle and collects it while site 2 is down;
     global tracing cannot finish its marking round and Hughes' global
     threshold stays pinned — exactly the paper's §7 claim, now
     exercised through the shared fault-plan machinery. *)
  let module B = Dgc_baselines in
  (* back tracing *)
  let sim = Sim.make ~cfg:(diff_cfg ()) () in
  ignore
    (Graph_gen.ring sim.Sim.eng ~sites:[ s 0; s 1 ] ~per_site:1 ~rooted:false);
  let inj = Inject.arm sim.Sim.eng crash_uninvolved_site_plan in
  Sim.start sim;
  let ok = Sim.collect_all sim ~max_rounds:40 () in
  Alcotest.(check bool) "back tracing collects despite the crash" true ok;
  Alcotest.(check int) "no garbage left" 0 (Oracle.garbage_count sim.Sim.eng);
  Alcotest.(check bool) "the bystander really was down" true
    (Inject.active inj = 1);
  Inject.quiesce inj;
  (* global tracing *)
  let eng2 = Engine.create (diff_cfg ()) in
  let gt = B.Global_trace.install eng2 in
  ignore (Graph_gen.ring eng2 ~sites:[ s 0; s 1 ] ~per_site:1 ~rooted:false);
  let inj2 = Inject.arm eng2 crash_uninvolved_site_plan in
  let done_ = ref false in
  B.Global_trace.collect gt ~on_done:(fun ~freed:_ ~rounds:_ -> done_ := true) ();
  Engine.run_for eng2 (Sim_time.of_seconds 300.);
  Alcotest.(check bool) "global trace stalls" false !done_;
  Alcotest.(check bool) "global trace leaves the cycle" true
    (Oracle.garbage_count eng2 > 0);
  Inject.quiesce inj2;
  (* Hughes timestamps *)
  let eng3 = Engine.create (diff_cfg ()) in
  let h = B.Hughes.install eng3 ~slack:(Sim_time.of_seconds 60.) in
  ignore (Graph_gen.ring eng3 ~sites:[ s 0; s 1 ] ~per_site:1 ~rooted:false);
  let inj3 = Inject.arm eng3 crash_uninvolved_site_plan in
  Engine.start_gc_schedule eng3;
  for _ = 1 to 20 do
    Engine.run_for eng3 (Sim_time.of_seconds 15.);
    B.Hughes.run_threshold_round h ()
  done;
  Alcotest.(check (float 1e-9)) "Hughes threshold pinned" 0.
    (B.Hughes.threshold h);
  Alcotest.(check bool) "Hughes leaves the cycle" true
    (Oracle.garbage_count eng3 > 0);
  Inject.quiesce inj3

(* --- the committed corpus ------------------------------------------------- *)

(* Two corpus shapes coexist. "dgc.plan/1" files are fault plans
   replayed through the campaign driver; they may pin an expected
   failure ("expect") and the config tweaks that arm it ("tweak") —
   the PR-6 sanitizer reproducers need [Config.sanitize] on and, for
   the leak, the §4.6 timeouts off. "dgc.schedule/1" files are
   explorer deviation schedules replayed against a catalog SUT: the
   §6.4 race is causally ordered under every FIFO fault plan (the Move
   departs its site only after the trace read was delivered there), so
   its reproducer is a queue deviation, not a fault window.

   Both shapes load through [Dgc_fuzz.Input] — the same codec the
   fuzzer promotes reproducers with — so anything the fuzzer writes
   into the corpus is replayable here by construction. *)

module Explorer = Dgc_analysis.Explorer
module Sut = Dgc_analysis.Sut
module Finput = Dgc_fuzz.Input

(* cwd is the test's build directory under `dune runtest` (the corpus
   is declared as a dep) but the workspace root under `dune exec`. *)
let corpus_dir () =
  match List.find_opt Sys.file_exists [ "corpus"; "test/corpus" ] with
  | Some d -> d
  | None -> Alcotest.fail "corpus directory not found"

let corpus_files dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".json")
  |> List.sort String.compare

let contains_sub ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* The substring a schedule-case violation must mention for each
   expected kind — the sanitizer's report vocabulary. *)
let expect_needle path = function
  | "race" -> "harmful race"
  | "leak" -> "lost trace"
  | e -> Alcotest.failf "%s: unknown expect %S" path e

let replay_plan_case f (p : Finput.plan_case) (meta : Finput.meta) =
  Alcotest.(check bool)
    (f ^ ": known workload") true
    (Workloads.mem p.Finput.pi_workload);
  let tweak = Finput.tweak_all meta.Finput.m_tweaks in
  let case =
    Finput.case_of_plan ~name:(Filename.remove_extension f) p
  in
  (let oc = Campaign.run_case ~tweak case in
   match (meta.Finput.m_expect, oc.Campaign.oc_failure) with
   | None, None -> ()
   | None, Some fl -> Alcotest.failf "%s: %s" f (Campaign.failure_to_string fl)
   | Some e, Some fl when String.equal e (Campaign.failure_kind fl) -> ()
   | Some e, Some fl ->
       Alcotest.failf "%s: expected %s, got %s" f e
         (Campaign.failure_to_string fl)
   | Some e, None -> Alcotest.failf "%s: expected %s, replayed clean" f e);
  (* The determinism half: on a sharded engine the artifact must be a
     function of (seed, shards) alone, never of the worker domain
     count — replay the same case at domains 1 and 4 and hold the
     dgc.chaos/1 documents to byte equality. *)
  let sharded domains cfg =
    { (tweak cfg) with Config.shards = 4; domains }
  in
  let doc domains =
    Json.to_string (Campaign.artifact (Campaign.run_case ~tweak:(sharded domains) case))
  in
  Alcotest.(check string)
    (f ^ ": domains 1/4 byte-identical artifact")
    (doc 1) (doc 4)

let replay_sched_case f (s : Finput.sched_case) (meta : Finput.meta) =
  let sut =
    match Sut.find s.Finput.si_sut with
    | Some x -> x
    | None -> Alcotest.failf "%s: unknown SUT %S" f s.Finput.si_sut
  in
  let run =
    Explorer.run_schedule sut ~max_steps:s.Finput.si_max_steps
      s.Finput.si_schedule
  in
  let expect =
    match meta.Finput.m_expect with
    | Some e -> e
    | None -> Alcotest.failf "%s: schedule corpus files must pin \"expect\"" f
  in
  let needle = expect_needle f expect in
  match run.Explorer.run_violation with
  | Some (_, msgs) when List.exists (contains_sub ~sub:needle) msgs -> ()
  | Some (_, msgs) ->
      Alcotest.failf "%s: expected %S in violation, got: %s" f needle
        (String.concat " | " msgs)
  | None ->
      Alcotest.failf "%s: schedule replayed clean, expected %s" f expect

let test_corpus_replays_clean () =
  let dir = corpus_dir () in
  let files = corpus_files dir in
  Alcotest.(check bool) "corpus is non-empty" true (List.length files >= 7);
  List.iter
    (fun f ->
      match Finput.load ~path:(Filename.concat dir f) with
      | Error e -> Alcotest.failf "%s: %s" f e
      | Ok (Finput.Plan_input p, meta) -> replay_plan_case f p meta
      | Ok (Finput.Schedule_input s, meta) -> replay_sched_case f s meta)
    files

let () =
  Alcotest.run "chaos"
    [
      ( "plan",
        [
          Alcotest.test_case "all kinds round-trip" `Quick test_plan_roundtrip;
          Alcotest.test_case "random plans round-trip" `Quick
            test_random_plan_roundtrip;
          Alcotest.test_case "malformed plans rejected" `Quick
            test_plan_rejects_garbage;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "same seed+plan, identical journals" `Quick
            test_injection_determinism;
        ] );
      ( "idempotency",
        [
          Alcotest.test_case "duplicate everything, still Garbage" `Quick
            test_dup_everything_still_garbage;
          Alcotest.test_case "duplicate report is a no-op" `Quick
            test_duplicate_report_is_noop;
          Alcotest.test_case "figures safe under dup+drop+retry" `Quick
            test_figs_safe_under_dup_drop_retry;
        ] );
      ( "retry",
        [
          Alcotest.test_case "backoff schedule and bounded give-up" `Quick
            test_retry_backoff_schedule;
          Alcotest.test_case "retry rescues a dropped call" `Quick
            test_retry_recovers_dropped_call;
          Alcotest.test_case "report redundancy counted" `Quick
            test_report_redundancy_counted;
        ] );
      ( "shrink",
        [
          Alcotest.test_case "recovers a planted 2-event plan" `Quick
            test_shrink_recovers_planted_pair;
          Alcotest.test_case "planted barrier bug caught and shrunk" `Quick
            test_planted_bug_caught_and_shrunk;
        ] );
      ( "differential",
        [
          Alcotest.test_case "crashed bystander: back vs baselines" `Quick
            test_differential_crashed_bystander;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "committed plans replay clean" `Quick
            test_corpus_replays_clean;
        ] );
    ]
