(* Dense export equivalence: the CSR adjacency + bitsets must encode
   exactly the Heap (or Snapshot) they were built from, over randomized
   multi-site graph_gen heaps — the byte-identity of trace outcomes
   rests on this. *)

open Dgc_prelude
open Dgc_simcore
open Dgc_heap
open Dgc_rts
open Dgc_workload

let cfg n seed =
  {
    Config.default with
    Config.n_sites = n;
    seed;
    delta = 3;
    threshold2 = 6;
    trace_interval = Sim_time.of_seconds 10.;
    trace_duration = Sim_time.zero;
  }

(* Decode object [i]'s field codes back to oids, in order. *)
let decode_fields (d : Dense.t) i =
  let out = ref [] in
  for k = d.Dense.d_start.(i + 1) - 1 downto d.Dense.d_start.(i) do
    let c = d.Dense.d_codes.(k) in
    let oid =
      if c >= 0 then Oid.make ~site:d.Dense.d_site ~index:c
      else d.Dense.d_pool.(-c - 1)
    in
    out := oid :: !out
  done;
  !out

let check_against_heap heap =
  let d = Dense.of_heap heap in
  let bound = Dense.bound d in
  Alcotest.(check int) "bound = alloc clock" (Heap.alloc_clock heap) bound;
  Alcotest.(check int)
    "object count" (Heap.object_count heap) (Dense.object_count d);
  Alcotest.(check (list int)) "indices" (Heap.indices heap) (Dense.indices d);
  let site = Heap.site heap in
  for i = 0 to bound - 1 do
    let oid = Oid.make ~site ~index:i in
    Alcotest.(check bool)
      (Printf.sprintf "present %d" i)
      (Heap.mem heap oid) (Dense.present d i);
    if Dense.present d i then
      Alcotest.(check (list string))
        (Printf.sprintf "fields of %d" i)
        (List.map Oid.to_string (Heap.fields heap oid))
        (List.map Oid.to_string (decode_fields d i))
  done;
  let roots = Heap.persistent_roots heap in
  for i = 0 to bound - 1 do
    let expect = List.exists (fun r -> Oid.index r = i) roots in
    Alcotest.(check bool) (Printf.sprintf "root %d" i) expect (Dense.is_root d i)
  done

let check_against_snapshot heap =
  let snap = Snapshot.take heap in
  let d = Dense.of_snapshot snap in
  Alcotest.(check (list int)) "indices" (Snapshot.indices snap)
    (Dense.indices d);
  let site = Snapshot.site snap in
  for i = 0 to Dense.bound d - 1 do
    let oid = Oid.make ~site ~index:i in
    Alcotest.(check bool)
      (Printf.sprintf "present %d" i)
      (Snapshot.mem snap oid) (Dense.present d i);
    if Dense.present d i then
      Alcotest.(check (list string))
        (Printf.sprintf "fields of %d" i)
        (List.map Oid.to_string (Snapshot.fields snap oid))
        (List.map Oid.to_string (decode_fields d i))
  done

(* Randomized graph_gen heaps, including holes from frees. *)
let prop_matches_heap =
  QCheck2.Test.make ~name:"dense export matches heap/snapshot" ~count:40
    ~print:QCheck2.Print.(pair int (pair int int))
    QCheck2.Gen.(pair (1 -- 1000) (pair (2 -- 4) (1 -- 20)))
    (fun (seed, (n_sites, objs_per_site)) ->
      let eng = Engine.create (cfg n_sites seed) in
      let rng = Rng.create ~seed in
      ignore
        (Graph_gen.random_graph eng ~rng ~objects_per_site:objs_per_site
           ~out_degree:2.5 ~remote_frac:0.3 ~root_frac:0.2);
      Array.iter
        (fun st ->
          let heap = st.Site.heap in
          (* Punch holes: free a few non-root objects so indices are
             sparse in [0, bound). *)
          let victims =
            List.filter (fun _i -> Rng.float rng 1.0 < 0.2) (Heap.indices heap)
          in
          ignore (Heap.free heap victims);
          check_against_heap heap;
          check_against_snapshot heap)
        (Engine.sites eng);
      true)

let test_empty_heap () =
  let heap = Heap.create (Site_id.of_int 0) in
  check_against_heap heap;
  check_against_snapshot heap

let () =
  Alcotest.run "dense"
    [
      ("unit", [ Alcotest.test_case "empty heap" `Quick test_empty_heap ]);
      ("properties", [ QCheck_alcotest.to_alcotest prop_matches_heap ]);
    ]
