(* The combined local trace (§3, §5): distance propagation and the
   convergence theorem, suspicion against delta, outset/inset
   computation in all three modes against a brute-force oracle, the
   Figure 4 failure of the naive mode, and the apply/swap step. *)

open Dgc_prelude
open Dgc_simcore
open Dgc_heap
open Dgc_rts
open Dgc_core
open Dgc_workload

let cfg_atomic =
  {
    Config.default with
    Config.delta = 3;
    threshold2 = 6;
    trace_duration = Sim_time.zero;
  }

let site_id = Site_id.of_int

let inref_dist eng r =
  match Tables.find_inref (Engine.site eng (Oid.site r)).Site.tables r with
  | Some ir -> Ioref.inref_dist ir
  | None -> Alcotest.failf "no inref for %a" Oid.pp r

let outref_dist eng ~at r =
  match Tables.find_outref (Engine.site eng at).Site.tables r with
  | Some o -> o.Ioref.or_dist
  | None -> Alcotest.failf "no outref for %a" Oid.pp r

(* --- distance propagation --------------------------------------------- *)

let test_chain_distances () =
  (* root -> o0@0 -> o1@1 -> o2@2 -> o3@3: inref of o_k has distance k. *)
  let sim = Sim.make ~cfg:{ cfg_atomic with Config.n_sites = 4 } () in
  let eng = sim.Sim.eng in
  let objs =
    Graph_gen.chain eng
      ~sites:[ site_id 0; site_id 1; site_id 2; site_id 3 ]
      ~per_site:1 ~rooted:true
  in
  Scenario.settle sim ~rounds:5;
  List.iteri
    (fun k o ->
      if k > 0 then
        Alcotest.(check int)
          (Format.asprintf "distance of %a" Oid.pp o)
          k (inref_dist eng o))
    objs

let test_fig1_c_distance () =
  (* Figure 1's c: two paths (length 2 via b, length 1 direct); the
     distance is the minimum, 1. *)
  let f = Scenario.fig1 ~cfg:cfg_atomic () in
  Scenario.settle f.Scenario.f1_sim ~rounds:4;
  Alcotest.(check int) "distance of c" 1
    (inref_dist f.Scenario.f1_sim.Sim.eng f.Scenario.f1_c)

let test_live_distances_converge_and_stay () =
  let sim = Sim.make ~cfg:{ cfg_atomic with Config.n_sites = 3 } () in
  let eng = sim.Sim.eng in
  let objs =
    Graph_gen.ring eng
      ~sites:[ site_id 0; site_id 1; site_id 2 ]
      ~per_site:2 ~rooted:true
  in
  Scenario.settle sim ~rounds:8;
  (* Only cross-site targets have inrefs. *)
  let with_inref =
    List.filter
      (fun o ->
        Tables.find_inref (Engine.site eng (Oid.site o)).Site.tables o <> None)
      objs
  in
  Alcotest.(check bool) "some inrefs exist" true (with_inref <> []);
  let d1 = List.map (fun o -> inref_dist eng o) with_inref in
  Scenario.settle sim ~rounds:4;
  let d2 = List.map (fun o -> inref_dist eng o) with_inref in
  Alcotest.(check (list int)) "live distances are a fixpoint" d1 d2;
  List.iter
    (fun d -> Alcotest.(check bool) "live distance small" true (d <= 3))
    d1

(* The §3 theorem: r rounds after a cycle becomes garbage, every ioref
   on it has estimated distance at least r. *)
let test_garbage_distance_growth () =
  List.iter
    (fun span ->
      let sim = Sim.make ~cfg:{ cfg_atomic with Config.n_sites = span } () in
      let eng = sim.Sim.eng in
      let sites = List.init span site_id in
      let objs = Graph_gen.ring eng ~sites ~per_site:2 ~rooted:false in
      for r = 1 to 8 do
        Scenario.settle sim ~rounds:1;
        let min_dist =
          List.fold_left
            (fun acc o ->
              match
                Tables.find_inref (Engine.site eng (Oid.site o)).Site.tables o
              with
              | Some ir -> min acc (Ioref.inref_dist ir)
              | None -> acc)
            max_int objs
        in
        Alcotest.(check bool)
          (Format.asprintf "span %d: min distance %d >= round %d" span
             min_dist r)
          true (min_dist >= r)
      done)
    [ 2; 3; 5 ]

let test_suspected_after_delta_rounds () =
  let sim = Sim.make ~cfg:{ cfg_atomic with Config.n_sites = 2 } () in
  let eng = sim.Sim.eng in
  let objs =
    Graph_gen.ring eng ~sites:[ site_id 0; site_id 1 ] ~per_site:1
      ~rooted:false
  in
  Scenario.settle sim ~rounds:6;
  (* delta = 3 and six rounds passed: every inref on the cycle must be
     suspected by now. *)
  List.iter
    (fun o ->
      match Tables.find_inref (Engine.site eng (Oid.site o)).Site.tables o with
      | Some ir ->
          Alcotest.(check bool)
            (Format.asprintf "%a suspected" Oid.pp o)
            true ir.Ioref.ir_suspected
      | None -> Alcotest.fail "missing inref")
    objs

(* --- outsets: three modes vs brute force ------------------------------ *)

let brute_outsets inp =
  let graph = inp.Local_trace.in_graph in
  let delta = inp.Local_trace.in_delta in
  let clean_roots =
    inp.Local_trace.in_roots
    @ List.filter_map
        (fun (r, d, flagged) -> if flagged || d > delta then None else Some r)
        inp.Local_trace.in_inrefs
  in
  let clean_locals, clean_remotes = Reach.closure graph ~from:clean_roots in
  List.filter_map
    (fun (r, d, flagged) ->
      if flagged || d <= delta then None
      else begin
        (* DFS from the suspect's object avoiding clean objects. *)
        let visited = ref Oid.Set.empty in
        let out = ref Oid.Set.empty in
        let rec go z =
          if Site_id.equal (Oid.site z) inp.Local_trace.in_site then begin
            if
              graph.Reach.g_mem z
              && (not (Oid.Set.mem z clean_locals))
              && not (Oid.Set.mem z !visited)
            then begin
              visited := Oid.Set.add z !visited;
              List.iter go (graph.Reach.g_fields z)
            end
          end
          else if not (Oid.Set.mem z clean_remotes) then
            out := Oid.Set.add z !out
        in
        go r;
        Some (r, Oid.Set.elements !out)
      end)
    inp.Local_trace.in_inrefs

let outsets_of_outcome outcome =
  List.filter_map
    (fun res ->
      if res.Local_trace.i_suspected then
        Some
          ( res.Local_trace.i_ref,
            List.sort Oid.compare res.Local_trace.i_outset )
      else None)
    outcome.Local_trace.in_results
  |> List.sort (fun (a, _) (b, _) -> Oid.compare a b)

let check_modes_match inp =
  let brute =
    brute_outsets inp
    |> List.map (fun (r, l) -> (r, List.sort Oid.compare l))
    |> List.sort (fun (a, _) (b, _) -> Oid.compare a b)
  in
  let bu =
    outsets_of_outcome (Local_trace.compute ~mode:Local_trace.Bottom_up inp)
  in
  let ind =
    outsets_of_outcome (Local_trace.compute ~mode:Local_trace.Independent inp)
  in
  let pp_sets sets =
    Format.asprintf "%a"
      (Format.pp_print_list (fun ppf (r, l) ->
           Format.fprintf ppf "%a:[%a] " Oid.pp r
             (Format.pp_print_list Oid.pp) l))
      sets
  in
  if bu <> brute then
    Alcotest.failf "bottom-up mismatch:@ got %s@ want %s" (pp_sets bu)
      (pp_sets brute);
  if ind <> brute then
    Alcotest.failf "independent mismatch:@ got %s@ want %s" (pp_sets ind)
      (pp_sets brute)

let suspect_everything eng =
  Array.iter
    (fun s ->
      Tables.iter_inrefs s.Site.tables (fun ir ->
          List.iter
            (fun src -> Ioref.set_source_dist ir src.Ioref.src_site ~dist:50)
            ir.Ioref.ir_sources))
    (Engine.sites eng)

let test_fig2_outsets_modes () =
  let f = Scenario.fig2 ~cfg:cfg_atomic () in
  let eng = f.Scenario.f2_sim.Sim.eng in
  suspect_everything eng;
  Array.iter
    (fun s -> check_modes_match (Local_trace.input_of_site eng s))
    (Engine.sites eng)

let test_fig4_naive_is_wrong () =
  let f = Scenario.fig4 ~cfg:cfg_atomic () in
  let eng = f.Scenario.f4_sim.Sim.eng in
  let q = Engine.site eng (Oid.site f.Scenario.f4_a) in
  suspect_everything eng;
  let inp = Local_trace.input_of_site eng q in
  (* Correct modes agree with brute force. *)
  check_modes_match inp;
  let outset_of mode r =
    let outcome = Local_trace.compute ~mode inp in
    List.assoc r (outsets_of_outcome outcome)
  in
  (* b reaches c through the z <-> x component. *)
  Alcotest.(check bool)
    "bottom-up: c in outset of b" true
    (List.exists (Oid.equal f.Scenario.f4_c)
       (outset_of Local_trace.Bottom_up f.Scenario.f4_b));
  (* The naive first cut misses it: z's outset was frozen before x
     finished (§5.2's backward-edge failure). *)
  Alcotest.(check bool)
    "naive: c missing from outset of b" false
    (List.exists (Oid.equal f.Scenario.f4_c)
       (outset_of Local_trace.Naive_bottom_up f.Scenario.f4_b))

(* Randomized graphs: all correct modes equal brute force. *)
let random_input rand =
  let n = 3 + Random.State.int rand 18 in
  let cfg = { cfg_atomic with Config.n_sites = 3 } in
  let eng = Engine.create cfg in
  let q = Engine.site eng (site_id 1) in
  let objs = Array.init n (fun _ -> Heap.alloc q.Site.heap) in
  (* random local edges *)
  for _ = 1 to n * 2 do
    let a = objs.(Random.State.int rand n) in
    let b = objs.(Random.State.int rand n) in
    Heap.add_field q.Site.heap ~obj:a ~target:b
  done;
  (* some remote targets at site 2 *)
  for _ = 1 to 1 + (n / 3) do
    let a = objs.(Random.State.int rand n) in
    let r = Builder.obj eng (site_id 2) in
    Builder.link eng ~src:a ~dst:r
  done;
  (* some inrefs from site 0, random distances; occasionally flagged *)
  for _ = 1 to 2 + (n / 3) do
    let o = objs.(Random.State.int rand n) in
    let holder = Builder.obj eng (site_id 0) in
    Builder.link eng ~src:holder ~dst:o;
    Builder.set_source_distance eng ~inref:o ~src:(site_id 0)
      (Random.State.int rand 10);
    if Random.State.int rand 10 = 0 then begin
      match Tables.find_inref q.Site.tables o with
      | Some ir -> ir.Ioref.ir_flagged <- true
      | None -> ()
    end
  done;
  (* occasionally a persistent root *)
  if Random.State.bool rand then
    Heap.add_persistent_root q.Site.heap objs.(Random.State.int rand n);
  Local_trace.input_of_site eng q

let prop_modes_equal_brute =
  QCheck2.Test.make ~name:"outset modes match brute force" ~count:200
    ~print:string_of_int
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let rand = Random.State.make [| seed |] in
      let inp = random_input rand in
      check_modes_match inp;
      true)

(* Independent tracing visits at least as many objects as bottom-up. *)
let prop_independent_cost =
  QCheck2.Test.make ~name:"independent visits >= bottom-up visits" ~count:100
    ~print:string_of_int
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let rand = Random.State.make [| seed |] in
      let inp = random_input rand in
      let bu =
        (Local_trace.compute ~mode:Local_trace.Bottom_up inp)
          .Local_trace.ot_stats
      in
      let ind =
        (Local_trace.compute ~mode:Local_trace.Independent inp)
          .Local_trace.ot_stats
      in
      ind.Local_trace.suspect_visits >= bu.Local_trace.suspect_visits)

(* --- apply / swap ------------------------------------------------------ *)

let test_apply_removes_untraced_outrefs () =
  let sim = Sim.make ~cfg:{ cfg_atomic with Config.n_sites = 2 } () in
  let eng = sim.Sim.eng in
  let a = Builder.root_obj eng (site_id 0) in
  let b = Builder.obj eng (site_id 1) in
  Builder.link eng ~src:a ~dst:b;
  Scenario.settle sim ~rounds:2;
  Builder.unlink eng ~src:a ~dst:b;
  Scenario.settle sim ~rounds:1;
  (* Outref gone at site 0 after its trace... *)
  Alcotest.(check bool) "outref removed" true
    (Tables.find_outref (Engine.site eng (site_id 0)).Site.tables b = None);
  Scenario.settle sim ~rounds:1;
  (* ...update message landed: inref gone, object collected. *)
  Alcotest.(check bool) "inref removed" true
    (Tables.find_inref (Engine.site eng (site_id 1)).Site.tables b = None);
  Alcotest.(check bool) "b collected" false
    (Heap.mem (Engine.site eng (site_id 1)).Site.heap b)

let test_apply_sends_distance_updates () =
  let sim = Sim.make ~cfg:{ cfg_atomic with Config.n_sites = 3 } () in
  let eng = sim.Sim.eng in
  let objs =
    Graph_gen.chain eng
      ~sites:[ site_id 0; site_id 1; site_id 2 ]
      ~per_site:1 ~rooted:true
  in
  Scenario.settle sim ~rounds:4;
  match objs with
  | [ _; o1; o2 ] ->
      Alcotest.(check int) "outref to o2 at site1 has dist 2" 2
        (outref_dist eng ~at:(site_id 1) o2);
      Alcotest.(check int) "inref dist o1" 1 (inref_dist eng o1)
  | _ -> Alcotest.fail "expected three objects"

let test_sweep_keeps_fresh_objects () =
  (* Objects allocated during a trace window survive the sweep. *)
  let cfg =
    {
      cfg_atomic with
      Config.n_sites = 1;
      trace_duration = Sim_time.of_seconds 5.;
    }
  in
  let sim = Sim.make ~cfg () in
  let eng = sim.Sim.eng in
  let s = Engine.site eng (site_id 0) in
  let _root = Builder.root_obj eng (site_id 0) in
  (* Open a window via the scheduled path. *)
  s.Site.hooks.Site.h_run_local_trace ();
  Alcotest.(check bool) "window open" true
    (Collector.in_window sim.Sim.col (site_id 0));
  let fresh = Heap.alloc s.Site.heap in
  Sim.run_for sim (Sim_time.of_seconds 10.);
  Alcotest.(check bool) "window closed" false
    (Collector.in_window sim.Sim.col (site_id 0));
  Alcotest.(check bool) "fresh object survived the windowed sweep" true
    (Heap.mem s.Site.heap fresh);
  (* It is garbage, so the next full trace collects it. *)
  Collector.force_local_trace sim.Sim.col (site_id 0);
  Alcotest.(check bool) "collected by the next trace" false
    (Heap.mem s.Site.heap fresh)

let test_memoization_effective_on_chains () =
  (* A long chain hanging off two suspected inrefs: every object shares
     the same outset, so the store keeps few distinct sets. *)
  let cfg = { cfg_atomic with Config.n_sites = 3 } in
  let eng = Engine.create cfg in
  let q = Engine.site eng (site_id 1) in
  let chain = List.init 50 (fun _ -> Heap.alloc q.Site.heap) in
  Builder.chain eng chain;
  let last = List.nth chain 49 in
  let remote = Builder.obj eng (site_id 2) in
  Builder.link eng ~src:last ~dst:remote;
  List.iteri
    (fun i o ->
      if i < 2 then begin
        let holder = Builder.obj eng (site_id 0) in
        Builder.link eng ~src:holder ~dst:o;
        Builder.set_source_distance eng ~inref:o ~src:(site_id 0) 50
      end)
    chain;
  let inp = Local_trace.input_of_site eng q in
  let outcome = Local_trace.compute ~mode:Local_trace.Bottom_up inp in
  let st = outcome.Local_trace.ot_stats in
  Alcotest.(check bool) "few distinct outsets" true
    (st.Local_trace.distinct_outsets <= 4);
  Alcotest.(check int) "every object scanned once" 50
    st.Local_trace.suspect_visits

let test_inset_is_inverse_of_outset () =
  let f = Scenario.fig2 ~cfg:cfg_atomic () in
  let eng = f.Scenario.f2_sim.Sim.eng in
  suspect_everything eng;
  Array.iter
    (fun s ->
      let outcome = Local_trace.compute (Local_trace.input_of_site eng s) in
      (* o in outset(i) implies i in inset(o) *)
      List.iter
        (fun ires ->
          if ires.Local_trace.i_suspected then
            List.iter
              (fun o ->
                let ores =
                  List.find
                    (fun x -> Oid.equal x.Local_trace.o_ref o)
                    outcome.Local_trace.out_results
                in
                Alcotest.(check bool)
                  (Format.asprintf "%a in inset of %a" Oid.pp
                     ires.Local_trace.i_ref Oid.pp o)
                  true
                  (List.exists
                     (Oid.equal ires.Local_trace.i_ref)
                     ores.Local_trace.o_inset))
              ires.Local_trace.i_outset)
        outcome.Local_trace.in_results)
    (Engine.sites eng)

(* The §3 theorem on arbitrary strongly connected garbage, not just
   clean rings: random chords added to a ring keep it one SCC; the
   minimum estimated distance must still dominate the round count. *)
let prop_distance_theorem_random_sccs =
  QCheck2.Test.make ~name:"distance theorem on random garbage SCCs" ~count:25
    ~print:string_of_int
    QCheck2.Gen.(int_bound 1_000_000)
    (fun seed ->
      let rand = Random.State.make [| seed |] in
      let span = 2 + Random.State.int rand 4 in
      let per_site = 1 + Random.State.int rand 3 in
      let sim = Sim.make ~cfg:{ cfg_atomic with Config.n_sites = span } () in
      let eng = sim.Sim.eng in
      let objs =
        Graph_gen.ring eng
          ~sites:(List.init span site_id)
          ~per_site ~rooted:false
      in
      let arr = Array.of_list objs in
      let n = Array.length arr in
      (* random chords (possibly cross-site) inside the cycle *)
      for _ = 1 to 1 + Random.State.int rand (2 * span) do
        let a = arr.(Random.State.int rand n) in
        let b = arr.(Random.State.int rand n) in
        if not (Oid.equal a b) then Builder.link eng ~src:a ~dst:b
      done;
      let ok = ref true in
      for r = 1 to 6 do
        Scenario.settle sim ~rounds:1;
        let min_dist =
          List.fold_left
            (fun acc o ->
              match
                Tables.find_inref (Engine.site eng (Oid.site o)).Site.tables o
              with
              | Some ir -> min acc (Ioref.inref_dist ir)
              | None -> acc)
            max_int objs
        in
        if min_dist < r then ok := false
      done;
      !ok)

let qsuite =
  List.map (fun t -> QCheck_alcotest.to_alcotest t)
    [
      prop_modes_equal_brute;
      prop_independent_cost;
      prop_distance_theorem_random_sccs;
    ]

let () =
  Alcotest.run "local_trace"
    [
      ( "distance",
        [
          Alcotest.test_case "chain distances" `Quick test_chain_distances;
          Alcotest.test_case "fig1: c at distance 1" `Quick
            test_fig1_c_distance;
          Alcotest.test_case "live distances converge" `Quick
            test_live_distances_converge_and_stay;
          Alcotest.test_case "garbage distances grow (theorem)" `Quick
            test_garbage_distance_growth;
          Alcotest.test_case "cycle suspected after delta rounds" `Quick
            test_suspected_after_delta_rounds;
        ] );
      ( "outsets",
        [
          Alcotest.test_case "fig2 modes match brute force" `Quick
            test_fig2_outsets_modes;
          Alcotest.test_case "fig4: naive bottom-up is wrong" `Quick
            test_fig4_naive_is_wrong;
          Alcotest.test_case "memoization shares chain outsets" `Quick
            test_memoization_effective_on_chains;
          Alcotest.test_case "insets invert outsets" `Quick
            test_inset_is_inverse_of_outset;
        ] );
      ( "apply",
        [
          Alcotest.test_case "untraced outrefs removed + update" `Quick
            test_apply_removes_untraced_outrefs;
          Alcotest.test_case "distance updates sent" `Quick
            test_apply_sends_distance_updates;
          Alcotest.test_case "snapshot window keeps fresh objects" `Quick
            test_sweep_keeps_fresh_objects;
        ] );
      ("properties", qsuite);
    ]
