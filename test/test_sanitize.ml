(* dgc-san: the vector-clock laws, the sanitize=off identity pin, the
   protocol lint (positive and negative), and the dynamic detectors
   rediscovering both seeded defects through the explorer. *)

open Dgc_simcore
open Dgc_rts
open Dgc_workload
open Dgc_chaos
module Json = Dgc_telemetry.Json
module Vclock = Dgc_sanitize.Vclock
module Lint = Dgc_sanitize.Lint
module San = Dgc_sanitize.Sanitizer
module Explorer = Dgc_analysis.Explorer
module Sut = Dgc_analysis.Sut

(* --- vector-clock laws ----------------------------------------------------- *)

let clock_gen =
  QCheck2.Gen.(
    list_repeat 4 (int_range 0 20) >|= fun comps -> Vclock.of_list comps)

let clock_print c = Format.asprintf "%a" Vclock.pp c

let prop_join_laws =
  QCheck2.Test.make ~name:"join is a commutative idempotent semilattice"
    ~count:200 ~print:(fun (a, b, c) ->
      Printf.sprintf "%s %s %s" (clock_print a) (clock_print b)
        (clock_print c))
    QCheck2.Gen.(triple clock_gen clock_gen clock_gen)
    (fun (a, b, c) ->
      Vclock.equal (Vclock.merge a b) (Vclock.merge b a)
      && Vclock.equal
           (Vclock.merge a (Vclock.merge b c))
           (Vclock.merge (Vclock.merge a b) c)
      && Vclock.equal (Vclock.merge a a) a
      && Vclock.leq a (Vclock.merge a b)
      && Vclock.leq b (Vclock.merge a b))

let prop_order_laws =
  QCheck2.Test.make ~name:"leq is a partial order; concurrent is its complement"
    ~count:200 ~print:(fun (a, b) ->
      Printf.sprintf "%s %s" (clock_print a) (clock_print b))
    QCheck2.Gen.(pair clock_gen clock_gen)
    (fun (a, b) ->
      Vclock.leq a a
      && (not (Vclock.before a a))
      && Vclock.concurrent a b = Vclock.concurrent b a
      && ((not (Vclock.leq a b && Vclock.leq b a)) || Vclock.equal a b)
      && Vclock.concurrent a b
         = ((not (Vclock.leq a b)) && not (Vclock.leq b a)))

let prop_tick_advances =
  QCheck2.Test.make ~name:"tick is a strictly later local event" ~count:200
    ~print:clock_print clock_gen (fun c ->
      let old = Vclock.copy c in
      Vclock.tick c 2;
      Vclock.before old c)

let test_send_receive_law () =
  (* The piggybacking discipline: the sender ticks and snapshots; the
     receiver joins the snapshot and ticks. Send ≺ receive, and a third
     site that saw neither stays concurrent with both. *)
  let sender = Vclock.create 3 and receiver = Vclock.create 3 in
  Vclock.tick sender 0;
  let snapshot = Vclock.copy sender in
  Vclock.join receiver snapshot;
  Vclock.tick receiver 1;
  Alcotest.(check bool) "send happens-before receive" true
    (Vclock.before snapshot receiver);
  let bystander = Vclock.create 3 in
  Vclock.tick bystander 2;
  Alcotest.(check bool) "bystander concurrent with the receive" true
    (Vclock.concurrent bystander receiver)

let test_roundtrip () =
  let c = Vclock.of_list [ 0; 3; 1; 0 ] in
  Alcotest.(check (list int)) "of_list/to_list" [ 0; 3; 1; 0 ]
    (Vclock.to_list c);
  Alcotest.(check int) "size" 4 (Vclock.size c)

(* --- sanitize=off identity -------------------------------------------------- *)

let contains_sub ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let fig2_case =
  {
    Campaign.cs_name = "san-identity";
    cs_workload = "fig2";
    cs_seed = 11;
    cs_horizon_ms = 20_000.;
    cs_plan = Plan.empty;
  }

let test_sanitize_identity () =
  (* The zero-perturbation pin: the same seeded campaign with the
     sanitizer armed must replay the exact same simulation — identical
     sim clock, identical non-san counters, identical non-san journal.
     Only san.* counters and cat-"san" journal lines may appear. *)
  let off = Campaign.run_case fig2_case in
  let on =
    Campaign.run_case ~tweak:(fun c -> { c with Config.sanitize = true })
      fig2_case
  in
  (match (off.Campaign.oc_failure, on.Campaign.oc_failure) with
  | None, None -> ()
  | f_off, f_on ->
      Alcotest.failf "unexpected failure: off=%s on=%s"
        (Option.fold ~none:"-" ~some:Campaign.failure_to_string f_off)
        (Option.fold ~none:"-" ~some:Campaign.failure_to_string f_on));
  Alcotest.(check (float 1e-9))
    "same simulated clock" off.Campaign.oc_sim_seconds
    on.Campaign.oc_sim_seconds;
  let non_san = List.filter (fun (k, _) -> not (contains_sub ~sub:"san." k)) in
  Alcotest.(check (list (pair string int)))
    "non-san counters identical" (non_san off.Campaign.oc_counters)
    (non_san on.Campaign.oc_counters);
  let non_san_lines = List.filter (fun l -> not (contains_sub ~sub:"[san]" l)) in
  Alcotest.(check (list string))
    "non-san journal identical"
    (non_san_lines off.Campaign.oc_journal)
    (non_san_lines on.Campaign.oc_journal);
  Alcotest.(check bool) "off run has no san counters" true
    (List.for_all
       (fun (k, _) -> not (contains_sub ~sub:"san." k))
       off.Campaign.oc_counters);
  Alcotest.(check bool) "on run minted capsules" true
    (match List.assoc_opt "san.capsules" on.Campaign.oc_counters with
    | Some n -> n > 0
    | None -> false)

(* --- the protocol lint ------------------------------------------------------ *)

let base_kinds = [ "move"; "move_ack"; "insert"; "insert_done"; "update" ]

(* The ext labels whose declaring modules are linked into this test
   binary (dgc_core's collector channel). *)
let ext_kinds = [ "back_call"; "back_reply"; "back_report" ]

let live_descriptors () =
  List.filter
    (fun d -> List.mem d.Protocol.d_kind (base_kinds @ ext_kinds))
    (Protocol.descriptors ())

let test_lint_clean () =
  let findings = Lint.run ~descriptors:(live_descriptors ()) ~ext_kinds () in
  if not (Lint.ok findings) then
    Alcotest.failf "lint rejected the live table: %s"
      (String.concat "; "
         (List.map (Format.asprintf "%a" Lint.pp_finding) findings))

let test_lint_rejects_missing_descriptor () =
  let mutated =
    List.filter
      (fun d -> d.Protocol.d_kind <> "back_call")
      (live_descriptors ())
  in
  let findings = Lint.run ~descriptors:mutated ~ext_kinds () in
  Alcotest.(check bool) "missing back_call flagged" true
    (List.exists
       (fun f ->
         f.Lint.lf_kind = "back_call" && f.Lint.lf_check = "missing-descriptor")
       findings)

let test_lint_rejects_removed_dup_memo () =
  (* The acceptance-bar negative test: strip the §4.6 call memo story
     from back_call (claim the channel never duplicates) and the lint
     must fail closed — only the reliable base channel may claim
     exactly-once. *)
  let mutated =
    List.map
      (fun d ->
        if d.Protocol.d_kind = "back_call" then
          { d with Protocol.d_dup = Protocol.Dup_exactly_once }
        else d)
      (live_descriptors ())
  in
  let findings = Lint.run ~descriptors:mutated ~ext_kinds () in
  Alcotest.(check bool) "exactly-once on an ext kind rejected" true
    (List.exists (fun f -> f.Lint.lf_kind = "back_call") findings)

let test_lint_rejects_crash_none_on_ext () =
  let mutated =
    List.map
      (fun d ->
        if d.Protocol.d_kind = "back_reply" then
          { d with Protocol.d_crash = Protocol.Crash_none }
        else d)
      (live_descriptors ())
  in
  let findings = Lint.run ~descriptors:mutated ~ext_kinds () in
  Alcotest.(check bool) "crash-none on an ext kind rejected" true
    (List.exists (fun f -> f.Lint.lf_kind = "back_reply") findings)

(* --- dynamic rediscovery ---------------------------------------------------- *)

let small_bounds =
  { Explorer.depth_bound = 1; width = 2; max_steps = 64; max_schedules = 20 }

let test_race_rediscovered () =
  let res = Explorer.explore ~bounds:small_bounds Sut.san_race_broken in
  match res.Explorer.res_counterexample with
  | None -> Alcotest.fail "the seeded §6.4 race was not rediscovered"
  | Some cx ->
      Alcotest.(check bool) "verdict names a harmful race" true
        (List.exists (contains_sub ~sub:"harmful race") cx.Explorer.cx_messages);
      Alcotest.(check bool) "shrunk to a single deviation" true
        (List.length cx.Explorer.cx_shrunk <= 1)

let test_leak_rediscovered () =
  let res = Explorer.explore ~bounds:small_bounds Sut.san_lost_trace in
  match res.Explorer.res_counterexample with
  | None -> Alcotest.fail "the planted lost trace was not proved"
  | Some cx ->
      Alcotest.(check bool) "verdict proves a lost trace" true
        (List.exists (contains_sub ~sub:"lost trace") cx.Explorer.cx_messages);
      Alcotest.(check (list (pair int int)))
        "leaks under FIFO already — shrunk to no deviations" []
        cx.Explorer.cx_shrunk

let test_race_benign_with_barrier () =
  (* The same deviated schedule that exposes the harmful race, but with
     the §6.1 transfer barrier ON: the concurrent pair still forms, the
     detector must classify it benign and report nothing. *)
  let last_san = ref None in
  let sut =
    {
      Explorer.sut_name = "san-race-barriered";
      sut_desc = "";
      sut_make =
        (fun () ->
          let cfg =
            {
              Config.default with
              Config.trace_jitter = Sim_time.zero;
              trace_duration = Sim_time.zero;
              sanitize = true;
            }
          in
          let f, _outcome = Scenario.fig5_race_arm ~cfg () in
          let sim = f.Scenario.f5_sim in
          let san = San.install sim.Dgc_core.Sim.eng in
          San.set_shared san (Dgc_core.Collector.back sim.Dgc_core.Sim.col);
          last_san := Some san;
          { Explorer.i_sim = sim; i_check = (fun () -> San.check san) });
    }
  in
  let run = Explorer.run_schedule sut ~max_steps:64 [ (0, 1) ] in
  (match run.Explorer.run_violation with
  | None -> ()
  | Some (step, msgs) ->
      Alcotest.failf "barriered race flagged at step %d: %s" step
        (String.concat " | " msgs));
  match !last_san with
  | None -> Alcotest.fail "sut never built"
  | Some san ->
      Alcotest.(check (list string)) "no harmful race" []
        (List.map San.race_message (San.harmful_races san));
      Alcotest.(check bool) "the concurrent pair still formed" true
        (List.exists (fun r -> not r.San.rc_harmful) (San.races san));
      let j = San.to_json san in
      Alcotest.(check (option string))
        "dgc.san/1 artifact schema" (Some "dgc.san/1")
        (Option.bind (Json.member "schema" j) Json.to_str_opt)

let () =
  Alcotest.run "sanitize"
    [
      ( "vclock",
        [
          QCheck_alcotest.to_alcotest prop_join_laws;
          QCheck_alcotest.to_alcotest prop_order_laws;
          QCheck_alcotest.to_alcotest prop_tick_advances;
          Alcotest.test_case "send precedes receive" `Quick
            test_send_receive_law;
          Alcotest.test_case "list round-trip" `Quick test_roundtrip;
        ] );
      ( "identity",
        [
          Alcotest.test_case "sanitize on perturbs nothing" `Quick
            test_sanitize_identity;
        ] );
      ( "lint",
        [
          Alcotest.test_case "live descriptor table is clean" `Quick
            test_lint_clean;
          Alcotest.test_case "missing descriptor rejected" `Quick
            test_lint_rejects_missing_descriptor;
          Alcotest.test_case "removing the dup memo rejected" `Quick
            test_lint_rejects_removed_dup_memo;
          Alcotest.test_case "crash-none on ext rejected" `Quick
            test_lint_rejects_crash_none_on_ext;
        ] );
      ( "detectors",
        [
          Alcotest.test_case "seeded race rediscovered and shrunk" `Quick
            test_race_rediscovered;
          Alcotest.test_case "planted lost trace proved" `Quick
            test_leak_rediscovered;
          Alcotest.test_case "barriered race stays benign" `Quick
            test_race_benign_with_barrier;
        ] );
    ]
