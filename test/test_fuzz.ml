(* Schedule fuzzing: randomized timings, latencies, faults and
   mutations, with the oracle watching every sweep. Safety must hold
   under every schedule; completeness once the chaos stops. *)

open Dgc_prelude
open Dgc_simcore
open Dgc_heap
open Dgc_rts
open Dgc_core
open Dgc_workload

let base_cfg =
  {
    Config.default with
    Config.delta = 3;
    threshold2 = 6;
    threshold_bump = 4;
    trace_interval = Sim_time.of_seconds 10.;
    trace_jitter = Sim_time.of_seconds 2.;
    trace_duration = Sim_time.zero;
  }

(* --- the fig5/6 race under randomized schedules ------------------------- *)

(* Like Scenario.fig5_race but with whatever latency model and trace
   start offset the fuzzer picks; barriers on, so every interleaving
   must be safe (any verdict is acceptable, killing z or g is not). *)
let random_race ~seed =
  let rng = Rng.create ~seed in
  let latency =
    match Rng.int rng 3 with
    | 0 ->
        Latency.Uniform
          ( Sim_time.of_millis (Rng.float_in rng 0.5 5.),
            Sim_time.of_millis (Rng.float_in rng 5. 40.) )
    | 1 -> Latency.Fixed (Sim_time.of_millis (Rng.float_in rng 1. 25.))
    | _ -> Latency.Exponential (Sim_time.of_millis (Rng.float_in rng 2. 15.))
  in
  let cfg =
    {
      base_cfg with
      Config.seed;
      latency;
      trace_duration =
        (if Rng.bool rng then Sim_time.of_seconds 1. else Sim_time.zero);
    }
  in
  let use_fig6 = Rng.bool rng in
  let f = if use_fig6 then fst (Scenario.fig6 ~cfg ()) else Scenario.fig5 ~cfg () in
  let sim = f.Scenario.f5_sim in
  let eng = sim.Sim.eng in
  Scenario.settle sim ~rounds:9;
  let agent = Mutator.spawn sim.Sim.muts ~at:f.Scenario.f5_p in
  Scenario.walk sim agent ~start_root:f.Scenario.f5_a
    ~path:
      [
        f.Scenario.f5_b;
        f.Scenario.f5_c;
        f.Scenario.f5_d;
        f.Scenario.f5_e;
        f.Scenario.f5_f;
        f.Scenario.f5_x;
        f.Scenario.f5_z;
      ]
    ~captures:[ (f.Scenario.f5_b, "b") ]
    ~k:(fun () ->
      let heap_q = (Engine.site eng f.Scenario.f5_q).Site.heap in
      let y_idx =
        let rec find i = function
          | [] -> -1
          | fld :: tl ->
              if Oid.equal fld f.Scenario.f5_y then i else find (i + 1) tl
        in
        find 0 (Heap.fields heap_q f.Scenario.f5_b)
      in
      if y_idx >= 0 then begin
        ignore (Mutator.read_field agent ~obj:"b" ~idx:y_idx ~dst:"y");
        ignore (Mutator.write agent ~obj:"y" ~value:"cur")
      end;
      let delete_after = Rng.float_in rng 0. 30. in
      Engine.schedule eng ~delay:(Sim_time.of_millis delete_after) (fun () ->
          Builder.unlink eng ~src:f.Scenario.f5_d ~dst:f.Scenario.f5_e;
          Collector.force_local_trace sim.Sim.col f.Scenario.f5_s))
    ();
  (* several back traces fired at random offsets, from both candidate
     outrefs *)
  for _ = 1 to 3 do
    let off = Rng.float_in rng 0. 150. in
    let from_h = Rng.bool rng in
    Engine.schedule eng ~delay:(Sim_time.of_millis off) (fun () ->
        ignore
          (if from_h then
             Collector.start_back_trace sim.Sim.col f.Scenario.f5_p
               f.Scenario.f5_h
           else
             Collector.start_back_trace sim.Sim.col f.Scenario.f5_q
               f.Scenario.f5_g))
  done;
  Sim.run_for sim (Sim_time.of_seconds 60.);
  Collector.force_local_trace_all sim.Sim.col;
  Sim.run_for sim (Sim_time.of_seconds 10.);
  Collector.force_local_trace_all sim.Sim.col;
  (* z and g are live through y; they must have survived. *)
  if not (Heap.mem (Engine.site eng f.Scenario.f5_q).Site.heap f.Scenario.f5_z)
  then Alcotest.failf "seed %d: z was killed" seed;
  if not (Heap.mem (Engine.site eng f.Scenario.f5_p).Site.heap f.Scenario.f5_g)
  then Alcotest.failf "seed %d: g was killed" seed

let prop_race_fuzz =
  QCheck2.Test.make ~name:"fig5/6 race safe under random schedules" ~count:40
    ~print:string_of_int
    QCheck2.Gen.(int_range 1 100_000)
    (fun seed ->
      (try random_race ~seed
       with Dgc_oracle.Oracle.Safety_violation m ->
         Alcotest.failf "seed %d: %s" seed m);
      true)

(* --- chaos: crashes, partitions, churn, loss ----------------------------- *)

let chaos_run ~seed =
  let cfg =
    {
      base_cfg with
      Config.n_sites = 5;
      seed;
      ext_drop = 0.1;
      trace_duration = Sim_time.of_seconds 1.;
      latency = Latency.Uniform (Sim_time.of_millis 1., Sim_time.of_millis 25.);
    }
  in
  let sim = Sim.make ~cfg () in
  let eng = sim.Sim.eng in
  let rng = Rng.create ~seed:(seed * 3) in
  Array.iter (fun st -> ignore (Builder.root_obj eng st.Site.id)) (Engine.sites eng);
  ignore
    (Graph_gen.random_graph eng ~rng ~objects_per_site:10 ~out_degree:1.4
       ~remote_frac:0.35 ~root_frac:0.1);
  let churn =
    Churn.start sim ~rng:(Rng.create ~seed:(seed * 5)) ~agents:3
      ~mean_op_gap:(Sim_time.of_millis 400.)
  in
  Sim.start sim;
  (* Random fault schedule over five simulated minutes. The mutators'
     base messages park during faults and land afterwards; the
     collector's traffic gets dropped and must recover. *)
  let crashed = ref None in
  for _ = 1 to 10 do
    Sim.run_for sim (Sim_time.of_seconds 30.);
    match Rng.int rng 4 with
    | 0 -> begin
        match !crashed with
        | None ->
            let v = Site_id.of_int (Rng.int rng 5) in
            Engine.crash eng v;
            crashed := Some v
        | Some v ->
            Engine.recover eng v;
            crashed := None
      end
    | 1 ->
        Engine.partition eng
          [ [ Site_id.of_int 0; Site_id.of_int 1 ];
            [ Site_id.of_int 2; Site_id.of_int 3; Site_id.of_int 4 ] ]
    | 2 -> Engine.heal eng
    | _ -> ()
  done;
  (* End of chaos: restore the world and demand completeness. *)
  (match !crashed with Some v -> Engine.recover eng v | None -> ());
  Engine.heal eng;
  Churn.stop churn;
  Sim.run_for sim (Sim_time.of_minutes 1.);
  let ok = Sim.collect_all sim ~max_rounds:80 () in
  if not ok then
    Alcotest.failf "seed %d: %d garbage objects survived the chaos" seed
      (Dgc_oracle.Oracle.garbage_count eng);
  (* Quiesced: the §6 invariants and table integrity must hold. *)
  Scenario.settle sim ~rounds:6;
  (match Invariants.strings (Invariants.check_all eng) with
  | [] -> ()
  | v :: _ -> Alcotest.failf "seed %d: invariant violated: %s" seed v);
  match Dgc_oracle.Oracle.table_violations eng with
  | [] -> ()
  | v :: _ -> Alcotest.failf "seed %d: table violation: %s" seed v

let prop_chaos =
  QCheck2.Test.make ~name:"chaos: crash/partition/churn stays safe and complete"
    ~count:6 ~print:string_of_int
    QCheck2.Gen.(int_range 1 10_000)
    (fun seed ->
      (try chaos_run ~seed
       with Dgc_oracle.Oracle.Safety_violation m ->
         Alcotest.failf "seed %d: %s" seed m);
      true)

(* Regression: this seed once exposed lost parked messages — a parked
   base message redelivered into a NEW fault was silently dropped,
   leaving a stale source entry (completeness leak). The engine now
   re-parks such messages. *)
let test_chaos_regression_3328 () =
  try chaos_run ~seed:3328
  with Dgc_oracle.Oracle.Safety_violation m -> Alcotest.failf "unsafe: %s" m

let () =
  Alcotest.run "fuzz"
    [
      ( "races",
        [ QCheck_alcotest.to_alcotest ~long:true prop_race_fuzz ] );
      ( "chaos",
        [
          QCheck_alcotest.to_alcotest ~long:true prop_chaos;
          Alcotest.test_case "regression: reparked messages (seed 3328)"
            `Quick test_chaos_regression_3328;
        ] );
    ]
