(* Telemetry: span well-formedness over the Figure-1 scenario,
   histogram percentile math, JSON parsing and the JSONL round-trip,
   and the run-artifact shape. *)

open Dgc_simcore
open Dgc_rts
open Dgc_core
open Dgc_workload
open Dgc_telemetry

let cfg_fast =
  {
    Config.default with
    Config.delta = 3;
    threshold2 = 6;
    threshold_bump = 4;
    trace_duration = Sim_time.zero;
  }

(* --- spans over fig1 --------------------------------------------------- *)

let fig1_tracer () =
  let f = Scenario.fig1 ~cfg:cfg_fast () in
  let sim = f.Scenario.f1_sim in
  let tracer = Tracer.create () in
  Engine.attach_tracer sim.Sim.eng tracer;
  Sim.start sim;
  ignore (Sim.collect_all sim ~max_rounds:30 ());
  tracer

let test_fig1_spans_well_formed () =
  let tracer = fig1_tracer () in
  let spans = Tracer.spans tracer in
  Alcotest.(check bool) "spans recorded" true (List.length spans > 0);
  Alcotest.(check int) "all spans finished" 0 (Tracer.open_count tracer);
  let by_id = Hashtbl.create 16 in
  List.iter (fun s -> Hashtbl.replace by_id s.Tracer.id s) spans;
  List.iter
    (fun s ->
      (match s.Tracer.parent with
      | None ->
          Alcotest.(check string)
            "only trace roots lack a parent" "back_trace" s.Tracer.name
      | Some p ->
          let parent =
            match Hashtbl.find_opt by_id p with
            | Some parent -> parent
            | None -> Alcotest.failf "span %d: dangling parent %d" s.Tracer.id p
          in
          Alcotest.(check string)
            "parent and child belong to the same trace" s.Tracer.trace
            parent.Tracer.trace;
          Alcotest.(check bool)
            "child starts no earlier than its parent" true
            (s.Tracer.start >= parent.Tracer.start));
      match s.Tracer.finish with
      | Some e ->
          Alcotest.(check bool) "finish >= start" true (e >= s.Tracer.start)
      | None -> ())
    spans

let test_fig1_spans_cross_sites () =
  let tracer = fig1_tracer () in
  let spans = Tracer.spans tracer in
  let garbage_root =
    List.find_opt
      (fun s ->
        s.Tracer.name = "back_trace"
        && List.assoc_opt "outcome" s.Tracer.attrs = Some (Json.Str "Garbage"))
      spans
  in
  let root =
    match garbage_root with
    | Some r -> r
    | None -> Alcotest.fail "no garbage back_trace root span"
  in
  (* Collect the root's whole subtree and check the trace leaped. *)
  let in_tree = Hashtbl.create 16 in
  Hashtbl.replace in_tree root.Tracer.id ();
  List.iter
    (fun s ->
      match s.Tracer.parent with
      | Some p when Hashtbl.mem in_tree p ->
          Hashtbl.replace in_tree s.Tracer.id ()
      | _ -> ())
    spans;
  let tree = List.filter (fun s -> Hashtbl.mem in_tree s.Tracer.id) spans in
  let sites = List.sort_uniq Int.compare (List.map (fun s -> s.Tracer.site) tree) in
  Alcotest.(check bool)
    "the garbage trace spans at least 2 sites" true (List.length sites >= 2);
  let names = List.sort_uniq String.compare (List.map (fun s -> s.Tracer.name) tree) in
  List.iter
    (fun required ->
      Alcotest.(check bool)
        (Printf.sprintf "tree contains a %s span" required)
        true (List.mem required names))
    [ "back_trace"; "frame.local"; "frame.remote"; "leap.call"; "leap.reply";
      "report" ]

(* --- histogram percentile math ----------------------------------------- *)

let test_hist_percentiles () =
  let m = Metrics.create () in
  (* Unit-width buckets make interpolation exact to within one bucket. *)
  let buckets = Array.init 201 float_of_int in
  for i = 1 to 100 do
    Metrics.hist_observe m ~buckets "lat" (float_of_int i)
  done;
  let h =
    match Metrics.hist_stats m "lat" with
    | Some h -> h
    | None -> Alcotest.fail "histogram missing"
  in
  Alcotest.(check int) "n" 100 h.Metrics.n;
  Alcotest.(check (float 1e-9)) "sum" 5050. h.Metrics.sum;
  Alcotest.(check (float 1e-9)) "min" 1. h.Metrics.min;
  Alcotest.(check (float 1e-9)) "max" 100. h.Metrics.max;
  Alcotest.(check (float 1.000001)) "p50 within one bucket" 50. h.Metrics.p50;
  Alcotest.(check (float 1.000001)) "p95 within one bucket" 95. h.Metrics.p95;
  Alcotest.(check (float 1.000001)) "p99 within one bucket" 99. h.Metrics.p99;
  (* Quantiles never extrapolate past observed extremes. *)
  Alcotest.(check bool) "p99 <= max" true (h.Metrics.p99 <= h.Metrics.max);
  Alcotest.(check bool) "p50 >= min" true (h.Metrics.p50 >= h.Metrics.min)

let test_hist_single_sample () =
  let m = Metrics.create () in
  Metrics.hist_observe m "one" 42.;
  match Metrics.hist_stats m "one" with
  | None -> Alcotest.fail "histogram missing"
  | Some h ->
      List.iter
        (fun (what, v) -> Alcotest.(check (float 1e-9)) what 42. v)
        [
          ("p50", h.Metrics.p50);
          ("p95", h.Metrics.p95);
          ("p99", h.Metrics.p99);
          ("min", h.Metrics.min);
          ("max", h.Metrics.max);
        ]

let test_reservoir_bounded () =
  let m = Metrics.create ~sample_cap:64 () in
  for i = 1 to 10_000 do
    Metrics.observe m "s" (float_of_int i)
  done;
  Alcotest.(check int) "observation count exact" 10_000 (Metrics.observed m "s");
  Alcotest.(check bool)
    "stored samples bounded" true
    (List.length (Metrics.samples m "s") <= 64);
  Alcotest.(check (float 1e-6)) "mean exact under reservoir" 5000.5
    (Metrics.mean m "s");
  Alcotest.(check (float 1e-9)) "max exact under reservoir" 10_000.
    (Metrics.max_sample m "s")

(* --- JSON and the JSONL round-trip ------------------------------------- *)

let test_json_round_trip () =
  let j =
    Json.Obj
      [
        ("a", Json.Int 3);
        ("b", Json.Float 1.5);
        ("s", Json.Str "x\"y\n\\z");
        ("l", Json.Arr [ Json.Bool true; Json.Null ]);
        ("o", Json.Obj [ ("nested", Json.Str "✓ utf8") ]);
      ]
  in
  match Json.parse (Json.to_string j) with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok j' ->
      Alcotest.(check string)
        "print-parse-print is stable" (Json.to_string j) (Json.to_string j')

let test_json_rejects_garbage () =
  List.iter
    (fun s ->
      match Json.parse s with
      | Ok _ -> Alcotest.failf "parser accepted %S" s
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "1 2"; "\"unterminated" ]

let golden_jsonl =
  {|{"id":0,"parent":null,"trace":"T0.0","name":"back_trace","site":0,"start":1.5,"end":2.25,"attrs":{"root":"S0/o1"}}
{"id":1,"parent":0,"trace":"T0.0","name":"frame.local","site":0,"start":1.5,"end":2.0,"attrs":{"verdict":"Garbage"}}
{"id":2,"parent":1,"trace":"T0.0","name":"leap.call","site":1,"start":1.625,"end":1.75,"attrs":{}}|}

let test_jsonl_round_trip () =
  let tracer = Tracer.create () in
  let root =
    Tracer.start_span tracer ~trace:"T0.0" ~name:"back_trace" ~site:0 ~at:1.5
      [ ("root", Json.Str "S0/o1") ]
  in
  let fr =
    Tracer.start_span tracer ~parent:root ~trace:"T0.0" ~name:"frame.local"
      ~site:0 ~at:1.5 []
  in
  let leap =
    Tracer.start_span tracer ~parent:fr ~trace:"T0.0" ~name:"leap.call"
      ~site:1 ~at:1.625 []
  in
  Tracer.finish_span tracer leap ~at:1.75 [];
  Tracer.finish_span tracer fr ~at:2. [ ("verdict", Json.Str "Garbage") ];
  Tracer.finish_span tracer root ~at:2.25 [];
  let out = Tracer.to_jsonl tracer in
  Alcotest.(check string) "golden JSONL" golden_jsonl (String.trim out);
  match Tracer.spans_of_jsonl out with
  | Error e -> Alcotest.failf "re-import failed: %s" e
  | Ok spans ->
      Alcotest.(check int) "span count survives" 3 (List.length spans);
      let reprint =
        String.concat "\n"
          (List.map (fun s -> Json.to_string (Tracer.span_to_json s)) spans)
      in
      Alcotest.(check string) "round-trip is lossless" golden_jsonl reprint

(* --- time series ------------------------------------------------------- *)

let contains_sub ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_series_counters_and_gauges () =
  let s = Series.create ~window:1.0 () in
  Series.add s "msgs" ~at:0.2 2;
  Series.incr s "msgs" ~at:0.9;
  Series.add s "msgs" ~at:2.4 5;
  Series.set s "depth" ~at:0.5 3.;
  Series.set s "depth" ~at:0.7 4.;
  Series.set s "depth" ~at:5.0 1.;
  Alcotest.(check (list (pair string string)))
    "names sorted with kinds"
    [ ("depth", "gauge"); ("msgs", "counter") ]
    (List.map
       (fun (n, k) ->
         (n, match k with Series.Counter -> "counter" | Series.Gauge -> "gauge"))
       (Series.names s));
  Alcotest.(check (list (pair (float 0.) (float 0.))))
    "counter buckets sum per window"
    [ (0., 3.); (2., 5.) ]
    (Series.points s "msgs");
  Alcotest.(check (list (pair (float 0.) (float 0.))))
    "gauge buckets keep the last write"
    [ (0., 4.); (5., 1.) ]
    (Series.points s "depth");
  Alcotest.(check (float 0.)) "counter total" 8. (Series.total s "msgs");
  Alcotest.(check (float 0.)) "gauge total is the last value" 1.
    (Series.total s "depth");
  Alcotest.(check (float 0.)) "unknown name totals 0" 0. (Series.total s "nope");
  (match Series.set s "msgs" ~at:3. 1. with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "gauge write on a counter accepted");
  match Series.add s "depth" ~at:3. 1 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "counter write on a gauge accepted"

let test_series_bucket_eviction () =
  let s = Series.create ~window:1.0 ~max_buckets:4 () in
  for i = 0 to 9 do
    Series.add s "c" ~at:(float_of_int i) 1
  done;
  Alcotest.(check int) "evicted buckets counted" 6 (Series.evicted s "c");
  Alcotest.(check (list (pair (float 0.) (float 0.))))
    "only the newest buckets retained"
    [ (6., 1.); (7., 1.); (8., 1.); (9., 1.) ]
    (Series.points s "c");
  Alcotest.(check (float 0.)) "total still covers evicted buckets" 10.
    (Series.total s "c")

let test_series_exports () =
  let s = Series.create () in
  Series.add s "back.msgs" ~at:0.5 3;
  Series.set s "bytes_resident{site=2}" ~at:1.5 4096.;
  let prom = Series.to_prom s in
  let has sub = contains_sub ~sub prom in
  Alcotest.(check bool) "counter family typed" true
    (has "# TYPE dgc_back_msgs counter");
  Alcotest.(check bool) "counter exposes the total" true (has "dgc_back_msgs 3");
  Alcotest.(check bool) "site suffix becomes a label" true
    (has "dgc_bytes_resident{site=\"2\"} 4096");
  let counters = Series.chrome_counters s in
  Alcotest.(check int) "one counter event per point" 2 (List.length counters);
  let pid_of j = Option.bind (Json.member "pid" j) Json.to_int_opt in
  Alcotest.(check bool) "labelled series land on their site's pid" true
    (List.exists (fun j -> pid_of j = Some 2) counters);
  (match Series.validate (Series.to_json s) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "validate: %s" e);
  (* Survives printing and parsing byte-identically. *)
  let str = Json.to_string (Series.to_json s) in
  match Json.parse str with
  | Error e -> Alcotest.failf "series reparse: %s" e
  | Ok j ->
      Alcotest.(check string) "print-parse-print stable" str (Json.to_string j);
      List.iter
        (fun (what, doc) ->
          match Series.validate doc with
          | Ok () -> Alcotest.failf "accepted %s" what
          | Error _ -> ())
        [
          ("non-object", Json.Int 1);
          ("missing window", Json.Obj [ ("series", Json.Obj []) ]);
          ( "bad kind",
            Json.Obj
              [
                ("window", Json.Float 1.);
                ( "series",
                  Json.Obj
                    [
                      ( "x",
                        Json.Obj
                          [
                            ("kind", Json.Str "dial");
                            ("n", Json.Int 0);
                            ("max", Json.Float 0.);
                            ("last", Json.Float 0.);
                            ("total", Json.Float 0.);
                            ("points", Json.Arr []);
                          ] );
                    ] );
              ] );
        ]

(* Strict text-format escaping: label values escape exactly backslash,
   double quote and newline; label names are forced into
   [a-zA-Z_][a-zA-Z0-9_]*. The parse-back half walks the exposition
   line with the official unescaping rules and must recover the
   original value byte-for-byte. *)
let test_series_prom_escaping () =
  let s = Series.create () in
  let original = "a\\b\"c\nd" in
  Series.add s ("evt{msg=" ^ original ^ "}") ~at:0.5 2;
  Series.set s "gauge{9bad-name=x}" ~at:1.0 7.;
  let prom = Series.to_prom s in
  Alcotest.(check bool) "value escaped per the text format" true
    (contains_sub ~sub:"dgc_evt{msg=\"a\\\\b\\\"c\\nd\"} 2" prom);
  Alcotest.(check bool) "label name sanitized and digit-prefixed" true
    (contains_sub ~sub:"dgc_gauge{_9bad_name=\"x\"} 7" prom);
  (* No exposition line may contain a raw (unescaped) newline: every
     line must be a comment, blank, or metric sample. *)
  List.iter
    (fun line ->
      if line <> "" && not (String.starts_with ~prefix:"#" line) then
        Alcotest.(check bool)
          (Printf.sprintf "sample line well-formed: %s" line)
          true
          (String.starts_with ~prefix:"dgc_" line))
    (String.split_on_char '\n' prom);
  (* Parse back: unescape the quoted label value. *)
  let prefix = "dgc_evt{msg=\"" in
  let line =
    List.find
      (String.starts_with ~prefix)
      (String.split_on_char '\n' prom)
  in
  let buf = Buffer.create 16 in
  let rec go i =
    match line.[i] with
    | '"' -> ()
    | '\\' ->
        (match line.[i + 1] with
        | 'n' -> Buffer.add_char buf '\n'
        | c -> Buffer.add_char buf c);
        go (i + 2)
    | c ->
        Buffer.add_char buf c;
        go (i + 1)
  in
  go (String.length prefix);
  Alcotest.(check string) "round-trips through the exposition format"
    original (Buffer.contents buf)

(* --- run artifact ------------------------------------------------------ *)

let test_artifact_shape () =
  let m = Metrics.create () in
  Metrics.incr m "msg.total";
  Metrics.add m "back.msgs" 7;
  Metrics.hist_observe m "back.latency_ms" 12.;
  Metrics.hist_observe m "back.latency_ms" 30.;
  let art = Run_artifact.make ~name:"unit" ~sim_seconds:60. m in
  (match
     Run_artifact.validate ~require_hists:[ "back.latency_ms" ]
       ~require_counter_prefixes:[ "msg."; "back." ]
       art
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "validate: %s" e);
  (* Survives printing and parsing. *)
  match Json.parse (Json.to_string art) with
  | Error e -> Alcotest.failf "artifact reparse: %s" e
  | Ok art' -> (
      match Run_artifact.validate art' with
      | Ok () -> ()
      | Error e -> Alcotest.failf "reparsed validate: %s" e)

let test_artifact_with_series () =
  let m = Metrics.create () in
  Metrics.incr m "msg.total";
  let s = Series.create () in
  Series.add s "back.in_flight" ~at:0.5 1;
  Series.set s "bytes_resident{site=0}" ~at:1.0 512.;
  let art = Run_artifact.make ~name:"unit" ~sim_seconds:60. ~series:s m in
  (match Run_artifact.validate art with
  | Ok () -> ()
  | Error e -> Alcotest.failf "validate: %s" e);
  (match Run_artifact.series_section art with
  | Some sec -> (
      match Series.validate sec with
      | Ok () -> ()
      | Error e -> Alcotest.failf "series section: %s" e)
  | None -> Alcotest.fail "series section missing");
  (* A corrupted series section must fail artifact validation. *)
  let corrupt =
    match art with
    | Json.Obj fields ->
        Json.Obj
          (List.map
             (fun (k, v) -> if k = "series" then (k, Json.Int 3) else (k, v))
             fields)
    | j -> j
  in
  match Run_artifact.validate corrupt with
  | Ok () -> Alcotest.fail "corrupted series section accepted"
  | Error _ -> ()

let test_artifact_rejects_bad () =
  List.iter
    (fun (what, j) ->
      match Run_artifact.validate j with
      | Ok () -> Alcotest.failf "accepted %s" what
      | Error _ -> ())
    [
      ("non-object", Json.Int 3);
      ("missing schema", Json.Obj [ ("name", Json.Str "x") ]);
      ( "bad counters",
        Json.Obj
          [
            ("schema", Json.Str Run_artifact.schema);
            ("name", Json.Str "x");
            ("sim_seconds", Json.Float 1.);
            ("counters", Json.Obj [ ("c", Json.Str "NaN") ]);
            ("histograms", Json.Obj []);
          ] );
    ]

let () =
  Alcotest.run "telemetry"
    [
      ( "spans",
        [
          Alcotest.test_case "fig1 spans are well-formed" `Quick
            test_fig1_spans_well_formed;
          Alcotest.test_case "fig1 garbage trace crosses sites" `Quick
            test_fig1_spans_cross_sites;
        ] );
      ( "histograms",
        [
          Alcotest.test_case "percentiles against known samples" `Quick
            test_hist_percentiles;
          Alcotest.test_case "single sample" `Quick test_hist_single_sample;
          Alcotest.test_case "reservoir stays bounded" `Quick
            test_reservoir_bounded;
        ] );
      ( "json",
        [
          Alcotest.test_case "round trip" `Quick test_json_round_trip;
          Alcotest.test_case "rejects malformed input" `Quick
            test_json_rejects_garbage;
          Alcotest.test_case "golden JSONL round-trip" `Quick
            test_jsonl_round_trip;
        ] );
      ( "series",
        [
          Alcotest.test_case "counters and gauges" `Quick
            test_series_counters_and_gauges;
          Alcotest.test_case "bucket eviction" `Quick
            test_series_bucket_eviction;
          Alcotest.test_case "prom, chrome and json exports" `Quick
            test_series_exports;
          Alcotest.test_case "strict prom escaping round-trips" `Quick
            test_series_prom_escaping;
        ] );
      ( "artifact",
        [
          Alcotest.test_case "shape validates and reparses" `Quick
            test_artifact_shape;
          Alcotest.test_case "carries a series section" `Quick
            test_artifact_with_series;
          Alcotest.test_case "rejects malformed artifacts" `Quick
            test_artifact_rejects_bad;
        ] );
    ]
