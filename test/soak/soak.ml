(* The soak tier: long randomized chaos campaigns over every workload.
   Run with `dune build @soak`; excluded from tier-1 `dune runtest`.

   Each workload gets a block of seeded random fault plans at a longer
   horizon than the smoke campaign. Any failure is shrunk to a minimal
   reproducer and printed as a ready-to-commit corpus plan. *)

open Dgc_chaos

let seeds_per_workload = 8
let horizon_ms = 90_000.
let events_per_plan = 5

let () =
  let failures = ref 0 in
  let cases = ref 0 in
  List.iter
    (fun workload ->
      let seeds =
        List.init seeds_per_workload (fun i -> (1000 * (i + 1)) + 7)
      in
      let summary =
        Campaign.run ~workload ~seeds ~horizon_ms ~events_per_plan ()
      in
      cases := !cases + List.length summary.Campaign.sm_outcomes;
      List.iter
        (fun (oc, shrunk, replays) ->
          incr failures;
          let case = oc.Campaign.oc_case in
          Printf.printf "FAIL %s: %s\n" case.Campaign.cs_name
            (match oc.Campaign.oc_failure with
            | Some f -> Campaign.failure_to_string f
            | None -> "?");
          Format.printf
            "  minimal reproducer (%d replays):@.  @[%a@]@.  replay: dgc-sim \
             chaos --workload %s --seed %d --plan <saved>@."
            replays Plan.pp shrunk case.Campaign.cs_workload
            case.Campaign.cs_seed)
        summary.Campaign.sm_failures;
      Printf.printf "soak %-10s %d/%d ok\n%!" workload
        (List.length summary.Campaign.sm_outcomes
        - List.length summary.Campaign.sm_failures)
        (List.length summary.Campaign.sm_outcomes))
    Workloads.names;
  if !failures > 0 then begin
    Printf.printf "soak: %d/%d cases FAILED\n" !failures !cases;
    exit 1
  end
  else Printf.printf "soak: all %d cases safe and complete\n" !cases
